"""The multi-job cluster scheduler: arbitration, preemption, degradation.

:class:`ClusterScheduler` replays a correlated fault timeline against a
cluster shared by several training jobs.  Per incident it:

1. maps the blast radius onto the tenants it actually hit
   (:class:`~repro.scheduler.placement.PlacementMap`),
2. files one spare claim per injured job and resolves the batch through
   the :class:`~repro.scheduler.spare_pool.SparePool` broker
   (priority-weighted under ``policy="priority"``, submission order under
   the naive ``policy="fifo"`` baseline),
3. walks each loser down the degradation ladder: preempt lower-priority
   capacity when the loser would otherwise stall (or fall below the
   configured DP floor), shrink the data-parallel degree via
   :class:`~repro.fault.elastic.ElasticReplanner` otherwise, and only
   stall — for the bounded provisioning time — when even dp=1 does not
   fit, and
4. schedules retry-with-backoff regrow attempts so degraded jobs claim
   freed capacity later instead of blocking on it now.

Every decision (place/claim/grant/deny/preempt/shrink/stall/regrow/
resume) is recorded and optionally emitted on the ``scheduler``
telemetry lane; the run's score is **cluster-wide goodput**:
Σ(effective-training-rate × job weight), integrated over the horizon as
a piecewise-constant timeline.  Everything is a pure function of the
seed: claim batches are ordered, ties broken deterministically, and the
single RNG is consumed in a fixed order.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..collectives.init import group_init_time
from ..collectives.kvstore import REDIS_STORE
from ..fault.domains import DomainTopology
from ..fault.elastic import ElasticReplanner
from ..fault.faults import FaultEvent, FaultInjector, Manifestation
from ..hardware.cluster import Cluster
from ..parallel.plan import ParallelPlan
from .job import JobSpec, JobState, JobStatus
from .placement import PlacementError, PlacementMap
from .spare_pool import SpareClaim, SpareGrant, SparePool

# Decision actions, in the vocabulary the trace lane renders.
ACTIONS = (
    "place", "claim", "grant", "deny", "preempt", "shrink",
    "stall", "degrade", "restore", "regrow", "resume", "provisioned",
)


@dataclass(frozen=True)
class SchedulerConfig:
    """Operational constants of the multi-tenant control loop."""

    heartbeat_interval: float = 10.0
    nccl_hang_timeout: float = 120.0
    silent_fault_detection_time: float = 2 * 3600.0
    diagnose_time: float = 90.0  # parallel diagnostic sweep (§4.3)
    kubernetes_replacement_time: float = 40.0
    spare_provisioning_time: float = 1800.0  # page + rack fresh machines
    backoff_base: float = 300.0  # first regrow retry after a lost claim
    backoff_factor: float = 2.0
    max_regrow_retries: int = 5  # bounded backoff budget
    # Preemption trigger: a losing high-priority job preempts when it
    # would stall outright or shrink below this fraction of healthy DP.
    preempt_dp_floor: float = 0.5
    uplinks_per_pod: int = 8  # ToR uplinks priced by the contention model

    def __post_init__(self) -> None:
        if not 0.0 <= self.preempt_dp_floor <= 1.0:
            raise ValueError("preempt_dp_floor must be in [0, 1]")
        if self.backoff_base <= 0 or self.backoff_factor < 1.0:
            raise ValueError("invalid backoff parameters")


@dataclass(frozen=True)
class SchedulerDecision:
    """One entry of the arbitration history."""

    time: float
    action: str
    job: str
    detail: Tuple[Tuple[str, Any], ...] = ()

    def detail_dict(self) -> Dict[str, Any]:
        return dict(self.detail)


@dataclass(frozen=True)
class GoodputSegment:
    """A stretch of the run with constant per-job rates."""

    start: float
    end: float
    goodput: float  # Σ weight * rate over the segment
    rates: Tuple[Tuple[str, float], ...] = ()

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class JobSummary:
    """Per-tenant outcome of one multi-job run."""

    name: str
    priority: int
    weight: float
    healthy_dp: int
    final_dp: int
    final_state: str
    effective_rate: float  # ∫ rate dt / duration, in [0, 1]
    incidents: int
    preemptions: int
    spares_consumed: int
    stall_seconds: float


@dataclass
class MultiJobReport:
    """Everything a multi-tenant chaos run reports."""

    duration: float
    policy: str
    segments: List[GoodputSegment]
    decisions: List[SchedulerDecision]
    per_job: Dict[str, JobSummary]
    spares_initial: int
    spares_consumed_by: Dict[str, int]
    spares_refunded_by: Dict[str, int]
    spares_available: int

    @property
    def goodput_seconds(self) -> float:
        return sum(s.goodput * s.duration for s in self.segments)

    @property
    def mean_goodput(self) -> float:
        return self.goodput_seconds / self.duration if self.duration > 0 else 0.0

    def timeline(self) -> List[Tuple[float, float]]:
        """(time, cluster goodput) change points, time-ordered."""
        return [(s.start, s.goodput) for s in self.segments]

    def actions(self, action: str) -> List[SchedulerDecision]:
        return [d for d in self.decisions if d.action == action]

    def describe(self) -> str:
        lines = [
            f"policy={self.policy}  mean goodput {self.mean_goodput:.3f} "
            f"(max {sum(j.weight for j in self.per_job.values()):.1f})",
            f"{'job':<12s} {'prio':>4s} {'weight':>6s} {'dp':>7s} "
            f"{'eff.rate':>8s} {'incid':>5s} {'preempt':>7s} {'spares':>6s} {'state':<9s}",
        ]
        for job in self.per_job.values():
            lines.append(
                f"{job.name:<12s} {job.priority:>4d} {job.weight:>6.1f} "
                f"{job.final_dp:>3d}/{job.healthy_dp:<3d} {job.effective_rate:>8.1%} "
                f"{job.incidents:>5d} {job.preemptions:>7d} "
                f"{job.spares_consumed:>6d} {job.final_state:<9s}"
            )
        lines.append(
            f"spares: {self.spares_initial} initial, "
            f"{sum(self.spares_consumed_by.values())} consumed, "
            f"{self.spares_available} left; {len(self.decisions)} decisions"
        )
        return "\n".join(lines)


class ClusterScheduler:
    """Places and drives concurrent jobs on one shared cluster."""

    def __init__(
        self,
        cluster: Cluster,
        topology: DomainTopology,
        jobs: Sequence[JobSpec],
        policy: str = "priority",
        config: Optional[SchedulerConfig] = None,
        rng: Optional[np.random.Generator] = None,
        hub: Optional[object] = None,
    ) -> None:
        if len(cluster.nodes) != topology.n_nodes:
            raise ValueError("cluster size must match the domain topology")
        names = [job.name for job in jobs]
        if len(set(names)) != len(names):
            raise ValueError("job names must be unique")
        self.cluster = cluster
        self.topology = topology
        self.policy = policy
        self.config = config or SchedulerConfig()
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.hub = hub
        self.placement = PlacementMap(topology=topology)
        self.pool = SparePool(cluster=cluster, policy=policy)
        self.elastic = ElasticReplanner()
        self.decisions: List[SchedulerDecision] = []
        self.segments: List[GoodputSegment] = []
        self.jobs: Dict[str, JobStatus] = {}
        self._rate_seconds: Dict[str, float] = {name: 0.0 for name in names}
        self._seq = 0
        self._queue: List[Tuple[float, int, str, Any]] = []
        self._last_t = 0.0
        # Admission in priority order (ties: submission order) — the
        # high-priority tenant picks its compact block first.
        for _index, spec in sorted(
            enumerate(jobs), key=lambda pair: (-pair[1].priority, pair[0])
        ):
            self._admit(spec)

    # -- bookkeeping helpers -------------------------------------------------

    def _decide(self, time: float, action: str, job: str, **detail: Any) -> None:
        record = SchedulerDecision(
            time=time,
            action=action,
            job=job,
            detail=tuple(sorted(detail.items())),
        )
        self.decisions.append(record)
        if self.hub is not None:
            self.hub.instant("scheduler", action, time, job=job, **detail)
            self.hub.count("scheduler", "decisions", 1, action=action)

    def _push(self, time: float, kind: str, payload: Any) -> None:
        self._seq += 1
        heapq.heappush(self._queue, (time, self._seq, kind, payload))

    def _node_at(self, index: int):
        return self.cluster.nodes[index]

    def _refresh_contention(self) -> None:
        for status in self.jobs.values():
            status.contention = self.placement.contention_factor(
                status.name, uplinks=self.config.uplinks_per_pod
            )

    def _mark(self, t: float) -> None:
        """Close the piecewise-constant goodput segment ending at ``t``."""
        if t <= self._last_t:
            return
        rates = tuple(
            (name, status.rate(self._last_t)) for name, status in self.jobs.items()
        )
        goodput = sum(self.jobs[name].spec.weight * rate for name, rate in rates)
        self.segments.append(
            GoodputSegment(start=self._last_t, end=t, goodput=goodput, rates=rates)
        )
        for name, rate in rates:
            self._rate_seconds[name] += rate * (t - self._last_t)
        if self.hub is not None:
            self.hub.sample("scheduler", "goodput", self._last_t, goodput)
        self._last_t = t

    # -- admission -----------------------------------------------------------

    def _admit(self, spec: JobSpec) -> None:
        status = JobStatus(spec=spec, plan=spec.plan)
        self.jobs[spec.name] = status
        try:
            nodes = self.placement.place(spec.name, spec.n_nodes)
        except PlacementError:
            status.state = JobState.PENDING
            self._decide(0.0, "deny", spec.name, reason="no-capacity",
                         needed=spec.n_nodes)
            self._push(self.config.backoff_base, "retry", spec.name)
            return
        status.nodes = nodes
        status.state = JobState.RUNNING
        self._decide(
            0.0, "place", spec.name,
            nodes=len(nodes), first=nodes[0], last=nodes[-1],
            pods=len(self.placement.pods_of(spec.name)),
        )
        self._refresh_contention()

    # -- per-incident latencies ----------------------------------------------

    def _detect_time(self, event: FaultEvent) -> float:
        cfg = self.config
        if event.kind.manifestation is Manifestation.EXPLICIT:
            return float(self.rng.uniform(0, cfg.heartbeat_interval)) + 2.0
        if event.kind.manifestation is Manifestation.HANG:
            return cfg.nccl_hang_timeout + float(
                self.rng.uniform(0, cfg.heartbeat_interval)
            )
        return float(self.rng.uniform(0.2, 1.0)) * cfg.silent_fault_detection_time

    def _init_time(self, plan: ParallelPlan) -> float:
        return group_init_time(plan, REDIS_STORE, ordered=True).total

    def _set_down(self, status: JobStatus, until: float) -> None:
        if until > status.down_until:
            status.down_until = until
            self._push(until, "wake", status.name)

    # -- the event loop --------------------------------------------------------

    def run(self, injector: FaultInjector, duration: float) -> MultiJobReport:
        """Replay ``duration`` seconds of multi-tenant fault timeline."""
        if duration <= 0:
            raise ValueError("duration must be positive")
        for event in injector.sample(duration):
            self._push(event.time, "fault", event)
        while self._queue:
            t, _seq, kind, payload = heapq.heappop(self._queue)
            if t >= duration:
                break
            self._mark(t)
            if kind == "fault":
                self._on_fault(t, payload)
            elif kind == "wake":
                self._on_wake(t, payload)
            elif kind == "slow-end":
                self._on_slow_end(t, payload)
            elif kind == "retry":
                self._on_retry(t, payload)
            elif kind == "provisioned":
                self._on_provisioned(t, payload)
            elif kind == "repair":
                self._on_repair(t, payload)
        self._mark(duration)
        return self._report(duration)

    # -- fault handling --------------------------------------------------------

    def _on_fault(self, t: float, event: FaultEvent) -> None:
        hit_by_job = self.placement.jobs_hit(event.affected_nodes)
        detect = self._detect_time(event)
        if event.kind.needs_replacement:
            self._on_replacement_fault(t, event, hit_by_job, detect)
        elif event.kind.manifestation is Manifestation.HANG:
            self._on_hang_fault(t, event, hit_by_job, detect)
        else:
            self._on_silent_fault(t, event, hit_by_job, detect)

    def _on_replacement_fault(
        self,
        t: float,
        event: FaultEvent,
        hit_by_job: Dict[str, List[int]],
        detect: float,
    ) -> None:
        # Hosts die immediately, tenanted or not.
        for index in event.affected_nodes:
            if index in self.placement.dead:
                continue
            self.placement.kill(index)
            self._node_at(index).healthy = False
            if index not in self.placement.owner:
                # Broken free hosts get repaired on the provisioning
                # timescale — capacity returns, it is just never free now.
                self._push(
                    t + self.config.spare_provisioning_time, "repair", index
                )
        claimants = [
            job for job in hit_by_job
            if self.jobs[job].state in (JobState.RUNNING, JobState.DEGRADED)
        ]
        if not claimants:
            return
        claims = [
            SpareClaim(
                job=job,
                needed=len(hit_by_job[job]),
                priority=self.jobs[job].spec.priority,
                weight=self.jobs[job].spec.weight,
                seq=seq,
            )
            for seq, job in enumerate(claimants)
        ]
        grants = self.pool.arbitrate(claims)
        for grant in grants:
            self._decide(
                t, "claim", grant.claim.job,
                needed=grant.claim.needed, domain=event.domain or f"node{event.node_index}",
                kind=event.kind.name,
            )
        for grant in grants:
            self._apply_grant(t, event, grant, hit_by_job[grant.claim.job], detect)
        self._refresh_contention()

    def _apply_grant(
        self,
        t: float,
        event: FaultEvent,
        grant: SpareGrant,
        hit: List[int],
        detect: float,
    ) -> None:
        cfg = self.config
        status = self.jobs[grant.claim.job]
        status.incidents += 1
        replaced = hit[: grant.granted]
        for index in replaced:
            self.cluster.evict(self._node_at(index).node_id)
            self.placement.revive(index)
        self.pool.record(status.name, grant.granted)
        if grant.granted:
            self._decide(
                t, "grant", status.name,
                granted=grant.granted, shortfall=grant.shortfall,
            )
        if not grant.denied:
            # Fully replaced: restart on the same plan.
            down = detect + cfg.diagnose_time + cfg.kubernetes_replacement_time \
                + self._init_time(status.plan)
            self._set_down(status, t + down)
            return
        self._decide(
            t, "deny", status.name,
            shortfall=grant.shortfall, available=self.pool.available,
        )
        self._handle_shortfall(t, status, hit[grant.granted :], detect)

    # -- the degradation ladder ------------------------------------------------

    def _best_dp(self, status: JobStatus, n_nodes: int) -> int:
        """Largest DP degree ``n_nodes`` hosts can sustain (0 = none).

        Shrinks route through :class:`ElasticReplanner` (same structural
        constraints as the tuner), restricted to plans that pack onto
        whole hosts.
        """
        from ..parallel.tuner import shrink_dp_plans

        spec = status.spec
        gpus = n_nodes * spec.gpus_per_node
        if gpus >= spec.plan.world_size:
            return spec.plan.dp
        if gpus < 1:
            return 0
        for candidate in shrink_dp_plans(spec.plan, gpus):
            if candidate.world_size % spec.gpus_per_node:
                continue
            decision = self.elastic.replan(spec.plan, candidate.world_size)
            if decision is not None:
                return decision.new_plan.dp
        return 0

    def _handle_shortfall(
        self, t: float, status: JobStatus, dead: List[int], detect: float
    ) -> None:
        """A losing claimant walks preempt -> shrink -> bounded stall."""
        cfg = self.config
        alive = self.placement.nodes_of(status.name)
        if self.policy == "fifo":
            # Naive baseline: losers wait for fresh machines, full stop.
            self._stall(t, status, detect)
            return
        best_dp = self._best_dp(status, len(alive))
        floor = cfg.preempt_dp_floor * status.healthy_dp
        if best_dp < max(1, floor):
            reclaimed = self._preempt_capacity(t, status, len(dead))
            if reclaimed:
                # Transferred capacity replaces the dead hosts: abandon
                # them and fold the reclaimed indices into the job.
                self._abandon_dead(t, status.name, dead)
                dead = []
                alive = self.placement.nodes_of(status.name)
                best_dp = self._best_dp(status, len(alive))
        if best_dp < 1:
            # Graceful shedding did not cover dp=1: displace the weakest
            # lower-priority tenant entirely rather than stall a
            # high-priority job.
            needed = status.spec.min_nodes - len(alive)
            if needed > 0 and self._displace_victim(t, status, needed):
                self._abandon_dead(t, status.name, dead)
                dead = []
                alive = self.placement.nodes_of(status.name)
                best_dp = self._best_dp(status, len(alive))
        if best_dp >= 1:
            self._abandon_dead(t, status.name, dead)
            self._shrink_to(t, status, best_dp, detect)
        else:
            self._stall(t, status, detect)

    def _abandon_dead(self, t: float, job: str, dead: List[int]) -> None:
        """A shrinking job walks away from its dead hosts; the cluster
        repairs them in the background on the provisioning timescale."""
        if not dead:
            return
        self.placement.drop_dead(job, dead)
        for index in dead:
            self._push(t + self.config.spare_provisioning_time, "repair", index)

    def _shrink_to(self, t: float, status: JobStatus, dp: int, detect: float) -> None:
        cfg = self.config
        old_dp = status.plan.dp
        new_plan = status.spec.plan.with_options(dp=dp)
        status.plan = new_plan
        restored = dp >= status.healthy_dp
        status.state = JobState.RUNNING if restored else JobState.DEGRADED
        down = detect + cfg.diagnose_time + self._init_time(new_plan)
        self._set_down(status, t + down)
        if restored:
            self._decide(t, "resume", status.name, dp=dp, at=t + down)
            status.retries = 0
            status.backoff = 0.0
            return
        self._decide(
            t, "shrink", status.name,
            dp=dp, from_dp=old_dp, healthy_dp=status.healthy_dp,
        )
        if self.hub is not None:
            self.hub.span(
                "scheduler", "degraded", 0, t, t + down,
                stream=status.name, dp=dp, healthy_dp=status.healthy_dp,
            )
        # Retry-with-backoff: come back for freed capacity later.
        status.retries = 0
        status.backoff = cfg.backoff_base
        self._push(t + down + status.backoff, "retry", status.name)

    def _stall(self, t: float, status: JobStatus, detect: float) -> None:
        """Bounded wait for fresh machines — the only full stop, and it
        always ends (provisioning revives every dead host in place)."""
        cfg = self.config
        status.state = JobState.STALLED
        resume_at = t + detect + cfg.diagnose_time + cfg.spare_provisioning_time
        status.stall_seconds += resume_at - t
        self._decide(
            t, "stall", status.name,
            until=resume_at, provisioning=cfg.spare_provisioning_time,
        )
        self._push(resume_at, "provisioned", status.name)

    def _victims_for(self, claimant: JobStatus) -> List[JobStatus]:
        """Preemptible lower-priority tenants, weakest first."""
        return sorted(
            (
                s for s in self.jobs.values()
                if s.name != claimant.name
                and s.spec.preemptible
                and s.spec.priority < claimant.spec.priority
                and s.state in (JobState.RUNNING, JobState.DEGRADED)
            ),
            key=lambda s: (s.spec.priority, s.spec.weight, s.name),
        )

    def _preempt_capacity(self, t: float, claimant: JobStatus, short: int) -> int:
        """Reclaim up to ``short`` hosts from lower-priority tenants by
        *graceful shedding*: each victim shrinks toward its dp=1 floor
        and hands the freed hosts over, but keeps training.  Returns the
        number of hosts transferred."""
        reclaimed = 0
        for victim in self._victims_for(claimant):
            if reclaimed >= short:
                break
            alive = self.placement.nodes_of(victim.name)
            keep_min = victim.spec.min_nodes
            if self._best_dp(victim, keep_min) < 1:
                continue  # victim cannot stay viable at its floor
            sheddable = max(0, len(alive) - keep_min)
            take = min(short - reclaimed, sheddable)
            if take <= 0:
                continue
            taken = alive[-take:]  # highest indices: the block's far end
            self.placement.release(victim.name, taken)
            self.placement.assign(claimant.name, taken)
            reclaimed += take
            remaining = len(alive) - take
            victim.preemptions += 1
            self._decide(
                t, "preempt", victim.name,
                by=claimant.name, nodes=take, remaining=remaining,
            )
            self._shrink_to(t, victim, self._best_dp(victim, remaining), detect=0.0)
        return reclaimed

    def _displace_victim(self, t: float, claimant: JobStatus, needed: int) -> int:
        """Fully preempt the weakest victim that frees >= ``needed``
        hosts: the claimant takes what it needs, the rest return to the
        free pool, the victim re-places later with backoff."""
        cfg = self.config
        for victim in self._victims_for(claimant):
            alive = self.placement.nodes_of(victim.name)
            if len(alive) < needed:
                continue
            self.placement.release(victim.name, alive)
            self.placement.assign(claimant.name, alive[:needed])
            victim_dead = [
                i for i in sorted(self.placement.dead)
                if self.placement.owner.get(i) == victim.name
            ]
            self._abandon_dead(t, victim.name, victim_dead)
            victim.state = JobState.PREEMPTED
            victim.preemptions += 1
            victim.retries = 0
            victim.backoff = cfg.backoff_base
            self._push(t + victim.backoff, "retry", victim.name)
            self._decide(
                t, "preempt", victim.name,
                by=claimant.name, nodes=needed, remaining=0, displaced=True,
            )
            return needed
        return 0

    # -- non-replacement faults -------------------------------------------------

    def _on_hang_fault(
        self,
        t: float,
        event: FaultEvent,
        hit_by_job: Dict[str, List[int]],
        detect: float,
    ) -> None:
        cfg = self.config
        for job in hit_by_job:
            status = self.jobs[job]
            if status.state not in (JobState.RUNNING, JobState.DEGRADED):
                continue
            status.incidents += 1
            down = detect + cfg.diagnose_time + event.kind.repair_time \
                + self._init_time(status.plan)
            self._set_down(status, t + down)
            self._decide(
                t, "degrade", job,
                kind=event.kind.name, down=down,
                domain=event.domain or f"node{event.node_index}",
            )

    def _on_silent_fault(
        self,
        t: float,
        event: FaultEvent,
        hit_by_job: Dict[str, List[int]],
        detect: float,
    ) -> None:
        until = t + detect + event.kind.repair_time
        for job in hit_by_job:
            status = self.jobs[job]
            if status.state not in (JobState.RUNNING, JobState.DEGRADED):
                continue
            status.incidents += 1
            status.slow_factor = event.kind.degraded_throughput
            if until > status.slow_until:
                status.slow_until = until
                self._push(until, "slow-end", job)
            self._decide(
                t, "degrade", job,
                kind=event.kind.name, factor=event.kind.degraded_throughput,
                until=until,
            )

    # -- timed follow-ups --------------------------------------------------------

    def _on_wake(self, t: float, job: str) -> None:
        status = self.jobs.get(job)
        if status is None or t + 1e-9 < status.down_until:
            return  # superseded by a later incident
        if status.state in (JobState.RUNNING, JobState.DEGRADED):
            self._decide(t, "resume", job, dp=status.plan.dp)

    def _on_slow_end(self, t: float, job: str) -> None:
        status = self.jobs[job]
        if t + 1e-9 < status.slow_until:
            return
        status.slow_factor = 1.0
        self._decide(t, "restore", job)

    def _on_provisioned(self, t: float, job: str) -> None:
        """Fresh machines arrived for a stalled job: revive in place."""
        status = self.jobs[job]
        if status.state is not JobState.STALLED:
            return
        for index in sorted(self.placement.dead):
            if self.placement.owner.get(index) == job:
                self.placement.revive(index)
                self._node_at(index).healthy = True
        status.state = JobState.RUNNING if status.plan.dp >= status.healthy_dp \
            else JobState.DEGRADED
        self._set_down(status, t + self._init_time(status.plan))
        self._decide(t, "provisioned", job, dp=status.plan.dp)
        self._refresh_contention()

    def _on_repair(self, t: float, index: int) -> None:
        """A broken unowned host comes back repaired and free; wake the
        degraded/displaced tenants so they can regrow onto it."""
        if index not in self.placement.dead or index in self.placement.owner:
            return
        self.placement.revive(index)
        self._node_at(index).healthy = True
        self._decide(t, "provisioned", "cluster", node=index)
        for name, status in self.jobs.items():
            if status.state in (
                JobState.DEGRADED, JobState.PREEMPTED, JobState.PENDING
            ):
                self._push(t, "retry", name)

    def _on_retry(self, t: float, job: str) -> None:
        """Backoff expiry: try to regrow (DEGRADED) or re-place (PREEMPTED
        / PENDING).  Never blocks — failure reschedules within the budget,
        then the job stays at its degraded-but-training state."""
        cfg = self.config
        status = self.jobs[job]
        if status.state is JobState.DEGRADED:
            grew = self._try_regrow(t, status)
        elif status.state in (JobState.PREEMPTED, JobState.PENDING):
            grew = self._try_replace(t, status)
        else:
            return  # healed in the meantime
        if grew:
            status.retries = 0
            status.backoff = 0.0
            if status.state is JobState.DEGRADED:
                # Partial regrow: keep trying for the rest.
                status.backoff = cfg.backoff_base
                self._push(t + status.backoff, "retry", job)
            return
        status.retries += 1
        if status.retries <= cfg.max_regrow_retries:
            status.backoff = max(cfg.backoff_base, status.backoff) * cfg.backoff_factor
            self._push(t + status.backoff, "retry", job)
            self._decide(
                t, "deny", job,
                reason="retry-backoff", attempt=status.retries,
                next_in=status.backoff,
            )
        elif status.state in (JobState.PREEMPTED, JobState.PENDING):
            # Keep polling for capacity at the capped interval: a
            # displaced job must eventually return, never deadlock.
            self._push(t + status.backoff, "retry", job)
        # A DEGRADED job past its budget simply stays degraded: it is
        # still training, so nothing blocks on the empty pool.

    def _claimable(self) -> Tuple[List[int], List[int]]:
        """(free healthy indices, dead unowned indices coverable by spares)."""
        free = self.placement.free_indices()
        dead_unowned = [
            i for i in sorted(self.placement.dead)
            if i not in self.placement.owner
        ]
        return free, dead_unowned[: self.pool.available]

    def _take_capacity(self, job: str, count: int) -> List[int]:
        """Claim ``count`` hosts: free ones first, then spare-backed
        revivals of dead unowned slots.  Caller checked availability."""
        free, revivable = self._claimable()
        taken: List[int] = []
        for index in free[:count]:
            taken.append(index)
        consumed = 0
        for index in revivable[: count - len(taken)]:
            self.cluster.evict(self._node_at(index).node_id)
            self.placement.revive(index)
            taken.append(index)
            consumed += 1
        self.pool.record(job, consumed)
        self.placement.assign(job, taken)
        return taken

    def _try_regrow(self, t: float, status: JobStatus) -> bool:
        alive = self.placement.nodes_of(status.name)
        free, revivable = self._claimable()
        budget = len(alive) + len(free) + len(revivable)
        dp = self._best_dp(status, budget)
        if dp <= status.plan.dp:
            return False
        new_plan = status.spec.plan.with_options(dp=dp)
        needed = new_plan.world_size // status.spec.gpus_per_node - len(alive)
        self._take_capacity(status.name, needed)
        status.plan = new_plan
        restored = dp >= status.healthy_dp
        status.state = JobState.RUNNING if restored else JobState.DEGRADED
        self._set_down(status, t + self._init_time(new_plan))
        self._decide(
            t, "regrow", status.name,
            dp=dp, healthy_dp=status.healthy_dp, added=needed,
        )
        if restored:
            self._decide(t, "resume", status.name, dp=dp)
        self._refresh_contention()
        return True

    def _try_replace(self, t: float, status: JobStatus) -> bool:
        free, revivable = self._claimable()
        budget = len(free) + len(revivable)
        dp = self._best_dp(status, budget)
        if dp < 1:
            return False
        new_plan = status.spec.plan.with_options(dp=dp)
        needed = new_plan.world_size // status.spec.gpus_per_node
        self._take_capacity(status.name, needed)
        status.plan = new_plan
        status.state = JobState.RUNNING if dp >= status.healthy_dp \
            else JobState.DEGRADED
        self._set_down(status, t + self._init_time(new_plan))
        self._decide(
            t, "place", status.name,
            dp=dp, nodes=needed, healthy_dp=status.healthy_dp,
        )
        self._refresh_contention()
        return True

    # -- reporting ----------------------------------------------------------------

    def _report(self, duration: float) -> MultiJobReport:
        per_job: Dict[str, JobSummary] = {}
        for name, status in self.jobs.items():
            per_job[name] = JobSummary(
                name=name,
                priority=status.spec.priority,
                weight=status.spec.weight,
                healthy_dp=status.healthy_dp,
                final_dp=status.plan.dp if status.state not in
                (JobState.PENDING, JobState.PREEMPTED) else 0,
                final_state=status.state.value,
                effective_rate=self._rate_seconds[name] / duration,
                incidents=status.incidents,
                preemptions=status.preemptions,
                spares_consumed=self.pool.consumed_by.get(name, 0),
                stall_seconds=status.stall_seconds,
            )
        return MultiJobReport(
            duration=duration,
            policy=self.policy,
            segments=list(self.segments),
            decisions=list(self.decisions),
            per_job=per_job,
            spares_initial=self.pool.initial,
            spares_consumed_by=dict(self.pool.consumed_by),
            spares_refunded_by=dict(self.pool.refunded_by),
            spares_available=self.pool.available,
        )

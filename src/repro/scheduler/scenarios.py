"""Multi-tenant chaos: the scheduler's reference scenario and CI gate.

Two tenants share a small cluster whose spare pool is deliberately
undersized (one standby for rack-sized blast radii).  The placement
shares rack 1 between the tenants, so a single rack-PSU event injures
both jobs at once and forces the spare broker to arbitrate the last
spare.  The scenario runs the same seeded fault timeline under both
arbitration policies:

* ``priority`` — the arbitrating scheduler: priority-weighted grants,
  preemption when a high-priority tenant would stall, DP-shrink for the
  rest, retry-with-backoff regrows.
* ``fifo`` — the naive baseline: submission-order grants and a full
  provisioning stall for every shortfall.

:func:`multi_tenant_chaos` is the CI gate: per seed it checks that the
goodput timeline is monotone-consistent and byte-identical across
re-runs, that the spare ledger balances, that no job ever blocks
unboundedly on a spare, and that the arbitrating scheduler beats the
FIFO baseline on cluster-wide goodput — raising ``AssertionError`` /
``ValueError`` otherwise, so a plain invocation doubles as a pass/fail
gate.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..fault.domains import (
    LEAF_LINK_FAULT,
    RACK_POWER_FAULT,
    TOR_SWITCH_FAULT,
    CorrelatedFaultInjector,
    DomainTopology,
    FaultDomain,
)
from ..fault.faults import CUDA_ERROR, NCCL_HANG, NIC_DEGRADED
from ..hardware.cluster import Cluster
from ..parallel.plan import plan_for_gpus
from .job import JobSpec
from .scheduler import ClusterScheduler, MultiJobReport, SchedulerConfig

# The testbed: 12 nodes in racks of 4 (pods of 8), one spare.  Both
# tenants run tp=8/pp=1/dp=6 (6 hosts each), so the placement fills the
# machine and rack 1 (nodes 4-7) straddles the two jobs.
TESTBED_NODES = 12
TESTBED_SPARES = 1

# Compressed fault rates: a few correlated events plus the odd node
# fault per simulated day, so every seed exercises the arbitration path
# within a short horizon.
CHAOS_DOMAINS = [
    FaultDomain("rack-psu", RACK_POWER_FAULT, 6.5e-2, scope="rack"),
    FaultDomain("tor-switch", TOR_SWITCH_FAULT, 2.5e-2, scope="pod"),
    FaultDomain("leaf-link", LEAF_LINK_FAULT, 2.5e-2, scope="pod"),
]
CHAOS_CATALOG = [CUDA_ERROR, NCCL_HANG, NIC_DEGRADED]
CHAOS_RATE_MULTIPLIER = 50.0


def testbed_jobs() -> Tuple[JobSpec, ...]:
    """The two tenants: a heavy high-priority job and a cheap one."""
    return (
        JobSpec(
            name="prod",
            plan=plan_for_gpus(48, tp=8, pp=1),
            priority=10,
            weight=2.0,
            preemptible=False,
        ),
        JobSpec(
            name="research",
            plan=plan_for_gpus(48, tp=8, pp=1),
            priority=1,
            weight=1.0,
        ),
    )


def build_scheduler(
    seed: int,
    policy: str,
    hub: Optional[object] = None,
    config: Optional[SchedulerConfig] = None,
) -> ClusterScheduler:
    topology = DomainTopology(
        n_nodes=TESTBED_NODES, nodes_per_rack=4, nodes_per_pod=8
    )
    cluster = Cluster.build(n_nodes=TESTBED_NODES, n_spares=TESTBED_SPARES)
    return ClusterScheduler(
        cluster=cluster,
        topology=topology,
        jobs=testbed_jobs(),
        policy=policy,
        config=config,
        rng=np.random.default_rng(seed),
        hub=hub,
    )


def build_injector(seed: int, sampler: str = "auto") -> CorrelatedFaultInjector:
    return CorrelatedFaultInjector(
        n_nodes=TESTBED_NODES,
        topology=DomainTopology(
            n_nodes=TESTBED_NODES, nodes_per_rack=4, nodes_per_pod=8
        ),
        domains=list(CHAOS_DOMAINS),
        rng=np.random.default_rng(seed),
        catalog=list(CHAOS_CATALOG),
        rate_multiplier=CHAOS_RATE_MULTIPLIER,
        sampler=sampler,
    )


def run_policy(
    seed: int,
    policy: str,
    days: float = 3.0,
    hub: Optional[object] = None,
    sampler: str = "auto",
) -> Tuple[MultiJobReport, ClusterScheduler]:
    """One full multi-tenant run under one arbitration policy."""
    scheduler = build_scheduler(seed, policy, hub=hub)
    report = scheduler.run(build_injector(seed, sampler=sampler), duration=days * 86400.0)
    return report, scheduler


def _fingerprint(report: MultiJobReport) -> str:
    """A byte-exact serialization of everything the gate compares."""
    lines = [f"{t:.9f} {g:.9f}" for t, g in report.timeline()]
    lines += [
        f"{d.time:.9f} {d.action} {d.job} {d.detail!r}" for d in report.decisions
    ]
    return "\n".join(lines)


def _check_monotone(report: MultiJobReport) -> None:
    total_weight = sum(j.weight for j in report.per_job.values())
    cursor = 0.0
    for segment in report.segments:
        if segment.start < cursor - 1e-9 or segment.end <= segment.start:
            raise ValueError(f"non-monotone goodput segment: {segment}")
        if not 0.0 <= segment.goodput <= total_weight + 1e-9:
            raise ValueError(f"goodput out of range: {segment}")
        cursor = segment.end
    if report.segments and abs(report.segments[-1].end - report.duration) > 1e-6:
        raise ValueError("goodput timeline does not cover the horizon")
    times = [d.time for d in report.decisions]
    if times != sorted(times):
        raise ValueError("decision log is not time-ordered")


def _check_bounded_stalls(report: MultiJobReport, config: SchedulerConfig) -> None:
    """No job ever blocks unboundedly waiting on a spare."""
    bound = (
        config.silent_fault_detection_time
        + config.diagnose_time
        + config.spare_provisioning_time
        + 1.0
    )
    for decision in report.actions("stall"):
        wait = decision.detail_dict()["until"] - decision.time
        if not 0.0 < wait <= bound:
            raise ValueError(f"unbounded stall: {decision}")


def multi_tenant_chaos(
    seeds: Sequence[int] = (0, 1, 2), days: float = 3.0
) -> List[dict]:
    """CI gate: arbitration beats FIFO, deterministically, per seed."""
    config = SchedulerConfig()
    summaries: List[dict] = []
    for seed in seeds:
        reports: Dict[str, MultiJobReport] = {}
        for policy in ("priority", "fifo"):
            report, scheduler = run_policy(seed, policy, days=days)
            again, _ = run_policy(seed, policy, days=days)
            assert _fingerprint(report) == _fingerprint(again), (
                f"seed {seed} policy {policy}: run is not deterministic"
            )
            _check_monotone(report)
            _check_bounded_stalls(report, config)
            if not scheduler.pool.consistent():
                raise ValueError(
                    f"seed {seed} policy {policy}: spare ledger does not balance"
                )
            for name, summary in report.per_job.items():
                consumed = report.spares_consumed_by.get(name, 0)
                if consumed != summary.spares_consumed:
                    raise ValueError(f"spare accounting mismatch for {name}")
            reports[policy] = report
        arbitrated = reports["priority"].mean_goodput
        naive = reports["fifo"].mean_goodput
        assert arbitrated > naive, (
            f"seed {seed}: arbitrating scheduler ({arbitrated:.4f}) does not "
            f"beat FIFO-spares baseline ({naive:.4f})"
        )
        summaries.append(
            {
                "seed": seed,
                "goodput_priority": arbitrated,
                "goodput_fifo": naive,
                "improvement": arbitrated / naive if naive > 0 else float("inf"),
                "decisions_priority": len(reports["priority"].decisions),
                "decisions_fifo": len(reports["fifo"].decisions),
                "preemptions": sum(
                    j.preemptions for j in reports["priority"].per_job.values()
                ),
                "spares_consumed": sum(
                    reports["priority"].spares_consumed_by.values()
                ),
            }
        )
    return summaries

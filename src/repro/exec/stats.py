"""Execution statistics for sweep runs: the ``SweepStats`` report."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Tuple


@dataclass(frozen=True)
class CacheReport:
    """Hit/miss counts of one cost-model cache over one sweep."""

    hits: int = 0
    misses: int = 0

    @property
    def calls(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.calls if self.calls else 0.0


@dataclass(frozen=True)
class SweepStats:
    """How a sweep executed: task fan-out and cost-model cache reuse.

    ``caches`` maps cache name (e.g. ``"block_cost"``) to the hit/miss
    counts accumulated *by this sweep's tasks only* — the executor
    snapshots counters around each task, so concurrent or prior users of
    the caches don't pollute the report.
    """

    n_tasks: int
    workers: int  # 0 means the serial in-process path
    caches: Dict[str, CacheReport] = field(default_factory=dict)

    @property
    def hits(self) -> int:
        return sum(c.hits for c in self.caches.values())

    @property
    def misses(self) -> int:
        return sum(c.misses for c in self.caches.values())

    @property
    def calls(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Aggregate cost-model cache hit rate across all caches."""
        return self.hits / self.calls if self.calls else 0.0

    def describe(self) -> str:
        mode = "serial" if self.workers == 0 else f"{self.workers} workers"
        lines = [
            f"sweep: {self.n_tasks} tasks ({mode}), "
            f"cost-model cache hit rate {self.hit_rate:.1%} "
            f"({self.hits}/{self.calls} calls)"
        ]
        for name in sorted(self.caches):
            c = self.caches[name]
            lines.append(
                f"  {name:<20s} {c.hits:>6d} hits {c.misses:>6d} misses "
                f"({c.hit_rate:.1%})"
            )
        return "\n".join(lines)

    @staticmethod
    def from_counters(
        counters: Mapping[str, Tuple[int, int]], n_tasks: int, workers: int
    ) -> "SweepStats":
        """Build a report from ``{name: (hits, misses)}`` counter deltas."""
        return SweepStats(
            n_tasks=n_tasks,
            workers=workers,
            caches={
                name: CacheReport(hits=h, misses=m) for name, (h, m) in counters.items()
            },
        )

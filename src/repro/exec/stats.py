"""Execution statistics for sweep runs: the ``SweepStats`` report."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, Mapping, Optional, Tuple


@dataclass(frozen=True)
class CacheReport:
    """Hit/miss/eviction counts of one cost-model cache over one sweep."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def calls(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.calls if self.calls else 0.0


@dataclass(frozen=True)
class SweepStats:
    """How a sweep executed: task fan-out and cost-model cache reuse.

    ``caches`` maps cache name (e.g. ``"block_cost"``) to the hit/miss
    counts accumulated *by this sweep's tasks only* — the executor
    snapshots counters around each task, so concurrent or prior users of
    the caches don't pollute the report.  ``persistent_hits`` counts
    tasks answered from a cross-run :class:`~repro.exec.memo.PersistentMemo`
    without executing at all.
    """

    n_tasks: int
    workers: int  # 0 means the serial in-process path
    caches: Dict[str, CacheReport] = field(default_factory=dict)
    persistent_hits: int = 0

    @property
    def hits(self) -> int:
        return sum(c.hits for c in self.caches.values())

    @property
    def misses(self) -> int:
        return sum(c.misses for c in self.caches.values())

    @property
    def calls(self) -> int:
        return self.hits + self.misses

    @property
    def evictions(self) -> int:
        """LRU evictions across all bounded cost-model caches."""
        return sum(c.evictions for c in self.caches.values())

    @property
    def hit_rate(self) -> float:
        """Aggregate cost-model cache hit rate across all caches."""
        return self.hits / self.calls if self.calls else 0.0

    def describe(self) -> str:
        mode = "serial" if self.workers == 0 else f"{self.workers} workers"
        header = (
            f"sweep: {self.n_tasks} tasks ({mode}), "
            f"cost-model cache hit rate {self.hit_rate:.1%} "
            f"({self.hits}/{self.calls} calls)"
        )
        if self.persistent_hits:
            header += f", {self.persistent_hits} served from the persistent cache"
        lines = [header]
        for name in sorted(self.caches):
            c = self.caches[name]
            line = (
                f"  {name:<20s} {c.hits:>6d} hits {c.misses:>6d} misses "
                f"({c.hit_rate:.1%})"
            )
            if c.evictions:
                line += f" {c.evictions} evicted"
            lines.append(line)
        return "\n".join(lines)

    @staticmethod
    def from_counters(
        counters: Mapping[str, Tuple[int, int]],
        n_tasks: int,
        workers: int,
        evictions: Optional[Mapping[str, int]] = None,
        persistent_hits: int = 0,
    ) -> "SweepStats":
        """Build a report from ``{name: (hits, misses)}`` counter deltas."""
        evictions = evictions or {}
        names = set(counters) | set(evictions)
        return SweepStats(
            n_tasks=n_tasks,
            workers=workers,
            caches={
                name: CacheReport(
                    hits=counters.get(name, (0, 0))[0],
                    misses=counters.get(name, (0, 0))[1],
                    evictions=evictions.get(name, 0),
                )
                for name in names
            },
            persistent_hits=persistent_hits,
        )

    @staticmethod
    def merge(parts: Iterable["SweepStats"]) -> "SweepStats":
        """Sum reports from sequential batches of one logical sweep.

        ``workers`` comes from the first part (batches of one search run
        share an executor configuration).
        """
        parts = list(parts)
        if not parts:
            return SweepStats(n_tasks=0, workers=0)
        caches: Dict[str, CacheReport] = {}
        for part in parts:
            for name, report in part.caches.items():
                prev = caches.get(name, CacheReport())
                caches[name] = replace(
                    prev,
                    hits=prev.hits + report.hits,
                    misses=prev.misses + report.misses,
                    evictions=prev.evictions + report.evictions,
                )
        return SweepStats(
            n_tasks=sum(p.n_tasks for p in parts),
            workers=parts[0].workers,
            caches=caches,
            persistent_hits=sum(p.persistent_hits for p in parts),
        )

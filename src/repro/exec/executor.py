"""Parallel sweep execution over a :class:`~concurrent.futures.ProcessPoolExecutor`.

A sweep is an ordered list of independent pricing tasks (one per
(model, plan, feature-set) point).  :func:`run_tasks` fans them out over
worker processes and merges results **in insertion order**, so the output
is deterministic and bit-for-bit identical to the serial path — the cost
models are pure, and ordering is the only other source of divergence.

``workers=0`` (the default everywhere) runs serially in-process: no
pickling requirements, no process startup, and exact reproducibility for
tests.  ``workers>0`` requires ``fn`` and the items to be picklable
(module-level functions, ``functools.partial`` of them, and the repro
dataclasses all are).

Either way the call returns ``(results, SweepStats)``: counters of the
memoized cost models (:mod:`repro.exec.memo`) are snapshotted around each
task, and the per-task deltas are summed across processes, so the report
reflects exactly the reuse this sweep achieved.

With a :class:`~repro.observability.TelemetryHub` as ``hub`` each
candidate also lands as a span on the ``exec`` trace lane.  Sweep tasks
run in wall-clock (not simulated) time, which would break byte-identical
traces, so the lane uses a deterministic pseudo-time axis: task ``i``
occupies ``[i, i+1)`` with its memo hit/miss deltas as span attributes.
Deltas arrive in submission order from both the serial and the parallel
path, so the merged counters are identical either way.
"""

from __future__ import annotations

import concurrent.futures
from dataclasses import dataclass
from typing import Any, Callable, Iterable, List, Sequence, Tuple, TypeVar

from .memo import Snapshot, cache_delta, cache_snapshot, merge_deltas
from .stats import SweepStats

T = TypeVar("T")
R = TypeVar("R")


def _call_with_stats(fn: Callable[[T], R], item: T) -> Tuple[R, Snapshot]:
    """Run one task and return (result, cache-counter delta).

    Top-level so it pickles; executed inside the worker process, where a
    task runs alone on the process's single task thread, so the
    before/after snapshot delta is attributable to this task.
    """
    before = cache_snapshot()
    result = fn(item)
    return result, cache_delta(before, cache_snapshot())


@dataclass(frozen=True)
class SweepExecutor:
    """Maps a pricing function over sweep points, serially or in processes.

    ``workers=0`` is the serial in-process path; ``workers=n`` fans out
    over an ``n``-process pool.  Results always come back in the items'
    insertion order.
    """

    workers: int = 0

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ValueError(f"workers must be >= 0, got {self.workers}")

    def map(
        self, fn: Callable[[T], R], items: Iterable[T], hub=None
    ) -> Tuple[List[R], SweepStats]:
        """``([fn(x) for x in items], SweepStats)``, possibly in parallel."""
        todo: Sequence[T] = list(items)
        if not todo:
            return [], SweepStats(n_tasks=0, workers=self.workers)
        if self.workers == 0:
            outcomes = [_call_with_stats(fn, item) for item in todo]
        else:
            outcomes = self._run_parallel(fn, todo)
        results = [result for result, _ in outcomes]
        deltas = [delta for _, delta in outcomes]
        if hub is not None:
            self._emit_telemetry(hub, todo, deltas)
        counters = merge_deltas(deltas)
        return results, SweepStats.from_counters(counters, len(todo), self.workers)

    def _run_parallel(
        self, fn: Callable[[T], R], items: Sequence[T]
    ) -> List[Tuple[R, Snapshot]]:
        with concurrent.futures.ProcessPoolExecutor(max_workers=self.workers) as pool:
            futures = [pool.submit(_call_with_stats, fn, item) for item in items]
            # Collect in submission order, not completion order: the
            # merge is deterministic regardless of worker scheduling.
            return [f.result() for f in futures]

    def _emit_telemetry(self, hub, items: Sequence[T], deltas: List[Snapshot]) -> None:
        for i, (item, delta) in enumerate(zip(items, deltas)):
            hits = sum(h for h, _ in delta.values())
            misses = sum(m for _, m in delta.values())
            hub.span(
                "exec",
                f"candidate[{type(item).__name__}]",
                rank=i % self.workers if self.workers else 0,
                start=float(i),
                end=float(i + 1),
                stream="sweep",
                task=i,
                memo_hits=hits,
                memo_misses=misses,
            )
            for name, (h, m) in sorted(delta.items()):
                hub.count("exec", "memo_hits", h, cache=name)
                hub.count("exec", "memo_misses", m, cache=name)
        hub.count("exec", "tasks", len(items))


def run_tasks(
    fn: Callable[[T], R], items: Iterable[T], workers: int = 0, hub=None
) -> Tuple[List[R], SweepStats]:
    """Functional shorthand for ``SweepExecutor(workers).map(fn, items)``."""
    return SweepExecutor(workers=workers).map(fn, items, hub=hub)


__all__ = ["SweepExecutor", "run_tasks"]

"""Parallel sweep execution over a :class:`~concurrent.futures.ProcessPoolExecutor`.

A sweep is an ordered list of independent pricing tasks (one per
(model, plan, feature-set) point).  :func:`run_tasks` fans them out over
worker processes and merges results **in insertion order**, so the output
is deterministic and bit-for-bit identical to the serial path — the cost
models are pure, and ordering is the only other source of divergence.

``workers=0`` (the default everywhere) runs serially in-process: no
pickling requirements, no process startup, and exact reproducibility for
tests.  ``workers>0`` requires ``fn`` and the items to be picklable
(module-level functions, ``functools.partial`` of them, and the repro
dataclasses all are).

Either way the call returns ``(results, SweepStats)``: counters of the
memoized cost models (:mod:`repro.exec.memo`) are snapshotted around each
task, and the per-task deltas are summed across processes, so the report
reflects exactly the reuse this sweep achieved.

A cross-run :class:`~repro.exec.memo.PersistentMemo` can short-circuit
whole tasks: pass ``cache=`` plus a ``cache_key(item) -> str`` function
and any item already priced by an earlier invocation is answered from
disk without running at all (``SweepStats.persistent_hits``).  Freshly
computed results are stored back; the caller flushes the memo.

With a :class:`~repro.observability.TelemetryHub` as ``hub`` each
candidate also lands as a span on the ``exec`` trace lane.  Sweep tasks
run in wall-clock (not simulated) time, which would break byte-identical
traces, so the lane uses a deterministic pseudo-time axis: task ``i``
occupies ``[i, i+1)`` with its memo hit/miss deltas as span attributes.
Deltas arrive in submission order from both the serial and the parallel
path, so the merged counters are identical either way.
"""

from __future__ import annotations

import concurrent.futures
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple, TypeVar

from .memo import (
    PersistentMemo,
    Snapshot,
    cache_delta,
    cache_snapshot,
    eviction_delta,
    eviction_snapshot,
    merge_deltas,
)
from .stats import SweepStats

T = TypeVar("T")
R = TypeVar("R")

TaskOutcome = Tuple[Any, Snapshot, Dict[str, int]]


def _call_with_stats(fn: Callable[[T], R], item: T) -> TaskOutcome:
    """Run one task and return (result, counter delta, eviction delta).

    Top-level so it pickles; executed inside the worker process, where a
    task runs alone on the process's single task thread, so the
    before/after snapshot delta is attributable to this task.
    """
    before = cache_snapshot()
    evictions_before = eviction_snapshot()
    result = fn(item)
    return (
        result,
        cache_delta(before, cache_snapshot()),
        eviction_delta(evictions_before, eviction_snapshot()),
    )


@dataclass(frozen=True)
class SweepExecutor:
    """Maps a pricing function over sweep points, serially or in processes.

    ``workers=0`` is the serial in-process path; ``workers=n`` fans out
    over an ``n``-process pool.  Results always come back in the items'
    insertion order.
    """

    workers: int = 0

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ValueError(f"workers must be >= 0, got {self.workers}")

    def map(
        self,
        fn: Callable[[T], R],
        items: Iterable[T],
        hub=None,
        cache: Optional[PersistentMemo] = None,
        cache_key: Optional[Callable[[T], str]] = None,
    ) -> Tuple[List[R], SweepStats]:
        """``([fn(x) for x in items], SweepStats)``, possibly in parallel."""
        if (cache is None) != (cache_key is None):
            raise ValueError("cache and cache_key must be passed together")
        todo: Sequence[T] = list(items)
        if not todo:
            return [], SweepStats(n_tasks=0, workers=self.workers)

        # Cross-run persistent lookups first: items already priced by an
        # earlier invocation never reach a worker.
        cached: Dict[int, R] = {}
        if cache is not None and cache_key is not None:
            sentinel = object()
            for i, item in enumerate(todo):
                value = cache.get(cache_key(item), sentinel)
                if value is not sentinel:
                    cached[i] = value
        pending = [(i, item) for i, item in enumerate(todo) if i not in cached]

        if self.workers == 0:
            outcomes = [_call_with_stats(fn, item) for _, item in pending]
        else:
            outcomes = self._run_parallel(fn, [item for _, item in pending])

        merged: List[R] = [None] * len(todo)  # type: ignore[list-item]
        for (i, item), (result, _, _) in zip(pending, outcomes):
            merged[i] = result
            if cache is not None and cache_key is not None:
                cache.put(cache_key(item), result)
        for i, value in cached.items():
            merged[i] = value

        deltas = [delta for _, delta, _ in outcomes]
        evictions = [ev for _, _, ev in outcomes]
        if hub is not None:
            self._emit_telemetry(hub, todo, pending, deltas, len(cached))
        counters = merge_deltas(deltas)
        merged_evictions: Dict[str, int] = {}
        for ev in evictions:
            for name, count in ev.items():
                merged_evictions[name] = merged_evictions.get(name, 0) + count
        return merged, SweepStats.from_counters(
            counters,
            len(todo),
            self.workers,
            evictions=merged_evictions,
            persistent_hits=len(cached),
        )

    def _run_parallel(self, fn: Callable[[T], R], items: Sequence[T]) -> List[TaskOutcome]:
        if not items:
            return []
        with concurrent.futures.ProcessPoolExecutor(max_workers=self.workers) as pool:
            futures = [pool.submit(_call_with_stats, fn, item) for item in items]
            # Collect in submission order, not completion order: the
            # merge is deterministic regardless of worker scheduling.
            return [f.result() for f in futures]

    def _emit_telemetry(
        self,
        hub,
        items: Sequence[T],
        pending: Sequence[Tuple[int, T]],
        deltas: List[Snapshot],
        persistent_hits: int,
    ) -> None:
        executed = {i: delta for (i, _), delta in zip(pending, deltas)}
        for i, item in enumerate(items):
            delta = executed.get(i)
            from_cache = delta is None
            hits = sum(h for h, _ in delta.values()) if delta else 0
            misses = sum(m for _, m in delta.values()) if delta else 0
            hub.span(
                "exec",
                f"candidate[{type(item).__name__}]",
                rank=i % self.workers if self.workers else 0,
                start=float(i),
                end=float(i + 1),
                stream="sweep",
                task=i,
                memo_hits=hits,
                memo_misses=misses,
                cached=from_cache,
            )
            if delta:
                for name, (h, m) in sorted(delta.items()):
                    hub.count("exec", "memo_hits", h, cache=name)
                    hub.count("exec", "memo_misses", m, cache=name)
        hub.count("exec", "tasks", len(items))
        if persistent_hits:
            hub.count("exec", "persistent_hits", persistent_hits)


def run_tasks(
    fn: Callable[[T], R],
    items: Iterable[T],
    workers: int = 0,
    hub=None,
    cache: Optional[PersistentMemo] = None,
    cache_key: Optional[Callable[[T], str]] = None,
) -> Tuple[List[R], SweepStats]:
    """Functional shorthand for ``SweepExecutor(workers).map(fn, items)``."""
    return SweepExecutor(workers=workers).map(
        fn, items, hub=hub, cache=cache, cache_key=cache_key
    )


__all__ = ["SweepExecutor", "run_tasks"]

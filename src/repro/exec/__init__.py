"""Sweep execution layer: parallel fan-out + memoized cost models.

The paper's headline results are sweeps — dozens of (model, plan,
feature-set) points.  This package makes them cheap twice over:

* :class:`SweepExecutor` / :func:`run_tasks` fan points out over a
  ``ProcessPoolExecutor`` with deterministic, insertion-ordered result
  merging (``workers=0`` = exact serial path, the default).
* :func:`repro.exec.memo.memoized` wraps the pure cost models
  (``block_cost``, ``collective_cost``, ``optimizer_step_time``) in
  process-local caches whose hit/miss counters surface through
  :class:`SweepStats`.

Usage::

    from repro.exec import run_tasks
    from repro import compare, job_175b

    jobs = [job_175b(n, 768) for n in (256, 512, 1024)]
    results, stats = run_tasks(compare, jobs, workers=4)
    print(stats.describe())
"""

from .executor import SweepExecutor, run_tasks
from .memo import (
    MemoCache,
    PersistentMemo,
    cache_snapshot,
    clear_caches,
    cost_model_fingerprint,
    get_cache,
    memoized,
    registered_caches,
    reset_caches,
)
from .stats import CacheReport, SweepStats

__all__ = [
    "CacheReport",
    "MemoCache",
    "PersistentMemo",
    "SweepExecutor",
    "SweepStats",
    "cache_snapshot",
    "clear_caches",
    "cost_model_fingerprint",
    "get_cache",
    "memoized",
    "registered_caches",
    "reset_caches",
    "run_tasks",
]

"""Process-local memoization for the pure cost models.

The expensive sub-models priced during a sweep — transformer block costs,
collective times, optimizer step times — are pure functions of their
arguments, and the same argument tuples recur across sweep points (a
strong-scaling sweep changes only ``dp``; the block cost depends on
neither).  Decorating them with :func:`memoized` makes that reuse free
and *observable*: every cache keeps hit/miss counters that the sweep
executor snapshots into a :class:`~repro.exec.stats.SweepStats` report.

Caches are process-local by design.  Worker processes of the sweep
executor each build (or, under ``fork``, inherit) their own cache; the
executor merges per-task counter deltas back into one report.  Because
the memoized functions are pure, caching never changes results — serial
and parallel sweeps stay bit-for-bit identical.

This module must stay dependency-free within ``repro`` (the cost-model
modules import it at definition time).
"""

from __future__ import annotations

import functools
from typing import Any, Callable, Dict, Optional, Tuple, TypeVar

F = TypeVar("F", bound=Callable[..., Any])


class MemoCache:
    """One named memoization cache with hit/miss/eviction counters.

    ``maxsize=None`` (the default) keeps the cache unbounded, the
    historical behaviour.  With a positive ``maxsize`` the cache evicts
    its least-recently-used entry once full, so long production runs and
    persistent caches don't grow without limit; evictions are counted
    and surface in :class:`~repro.exec.stats.SweepStats`.
    """

    def __init__(self, name: str, maxsize: Optional[int] = None) -> None:
        if maxsize is not None and maxsize < 1:
            raise ValueError(f"maxsize must be >= 1 or None, got {maxsize}")
        self.name = name
        self.maxsize = maxsize
        self.store: Dict[Any, Any] = {}  # insertion order == recency order
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def calls(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.calls if self.calls else 0.0

    def get(self, key: Any) -> Any:
        """The cached value (refreshing recency); KeyError on a miss."""
        if self.maxsize is None:
            # Unbounded caches never evict, so recency is meaningless —
            # skip the pop/re-insert churn on the hot lookup path.
            return self.store[key]
        value = self.store.pop(key)  # KeyError propagates on miss
        self.store[key] = value  # re-insert: most recently used
        return value

    def put(self, key: Any, value: Any) -> None:
        """Insert a value, evicting the LRU entry if over ``maxsize``."""
        self.store.pop(key, None)
        self.store[key] = value
        if self.maxsize is not None and len(self.store) > self.maxsize:
            oldest = next(iter(self.store))
            del self.store[oldest]
            self.evictions += 1

    def clear(self) -> None:
        """Drop entries; counters are kept (they describe past calls)."""
        self.store.clear()

    def reset(self) -> None:
        """Drop entries *and* zero the counters."""
        self.store.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0


# Registry of every cache created via @memoized, keyed by name.
_REGISTRY: Dict[str, MemoCache] = {}


def get_cache(name: str, maxsize: Optional[int] = None) -> MemoCache:
    """The cache registered under ``name`` (created on first use).

    ``maxsize`` applies only when the cache is first created (or when
    passed explicitly later, which rebounds an existing cache).
    """
    cache = _REGISTRY.get(name)
    if cache is None:
        cache = _REGISTRY[name] = MemoCache(name, maxsize=maxsize)
    elif maxsize is not None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1 or None, got {maxsize}")
        cache.maxsize = maxsize
    return cache


def registered_caches() -> Dict[str, MemoCache]:
    """A live view of all registered caches, by name."""
    return dict(_REGISTRY)


def memoized(name: str, maxsize: Optional[int] = None) -> Callable[[F], F]:
    """Memoize a pure function under a named, inspectable cache.

    The key is the full positional + keyword argument tuple; unhashable
    arguments fall through to a plain call (counted as a miss) so the
    decorator never changes semantics.  The wrapped function gains a
    ``cache`` attribute (its :class:`MemoCache`) and a
    ``__wrapped__`` attribute (the raw function).  ``maxsize`` bounds
    the cache with LRU eviction (None = unbounded, the default).
    """

    def decorate(fn: F) -> F:
        cache = get_cache(name, maxsize=maxsize)

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            key = args if not kwargs else (args, tuple(sorted(kwargs.items())))
            try:
                hit = key in cache.store
            except TypeError:  # unhashable argument: bypass the cache
                cache.misses += 1
                return fn(*args, **kwargs)
            if hit:
                cache.hits += 1
                return cache.get(key)
            cache.misses += 1
            value = fn(*args, **kwargs)
            cache.put(key, value)
            return value

        wrapper.cache = cache  # type: ignore[attr-defined]
        return wrapper  # type: ignore[return-value]

    return decorate


# -- counter snapshots (used by the sweep executor) ---------------------------

Snapshot = Dict[str, Tuple[int, int]]  # name -> (hits, misses)


def cache_snapshot() -> Snapshot:
    """Current (hits, misses) of every registered cache."""
    return {name: (c.hits, c.misses) for name, c in _REGISTRY.items()}


def cache_delta(before: Snapshot, after: Snapshot) -> Snapshot:
    """Counter growth between two snapshots (missing names count from 0)."""
    delta: Snapshot = {}
    for name, (hits, misses) in after.items():
        h0, m0 = before.get(name, (0, 0))
        delta[name] = (hits - h0, misses - m0)
    return delta


def merge_deltas(deltas: Tuple[Snapshot, ...] | list) -> Snapshot:
    """Sum counter deltas from independent tasks/processes."""
    total: Dict[str, Tuple[int, int]] = {}
    for delta in deltas:
        for name, (hits, misses) in delta.items():
            h0, m0 = total.get(name, (0, 0))
            total[name] = (h0 + hits, m0 + misses)
    return total


def eviction_snapshot() -> Dict[str, int]:
    """Current eviction count of every registered cache."""
    return {name: c.evictions for name, c in _REGISTRY.items()}


def eviction_delta(before: Dict[str, int], after: Dict[str, int]) -> Dict[str, int]:
    """Eviction growth between two snapshots (missing names count from 0)."""
    return {name: count - before.get(name, 0) for name, count in after.items()}


def clear_caches() -> None:
    """Drop all cached entries (counters survive)."""
    for cache in _REGISTRY.values():
        cache.clear()


def reset_caches() -> None:
    """Drop all cached entries and zero all counters."""
    for cache in _REGISTRY.values():
        cache.reset()


# -- persistent cross-run cache ----------------------------------------------

# Modules whose source text defines the priced quantities.  Changing any
# of them changes what a cached result *means*, so their joint hash
# versions every persistent cache.  Import-name strings (not module
# objects) keep this module dependency-free within repro.
_COST_MODEL_MODULES = (
    "repro.hardware.gpu",
    "repro.hardware.nic",
    "repro.model.blocks",
    "repro.model.flops",
    "repro.model.memory",
    "repro.model.operators",
    "repro.collectives.primitives",
    "repro.collectives.groups",
    "repro.collectives.fabric",
    "repro.network.ecmp",
    "repro.network.flow",
    "repro.network.topology",
    "repro.parallel.zero",
    "repro.parallel.pipeline",
    "repro.training.iteration",
    "repro.training.overlap",
    "repro.training.datapipe",
)


def cost_model_fingerprint() -> str:
    """A hash that changes whenever any cost-model module's source does.

    Persistent caches embed this fingerprint; a mismatch on load makes
    the cache start empty, so stale prices can never leak across code
    changes.  Falls back to the package version for module sources that
    cannot be read (zipped installs).
    """
    import hashlib
    import importlib

    digest = hashlib.sha256()
    for module_name in _COST_MODEL_MODULES:
        digest.update(module_name.encode())
        try:
            module = importlib.import_module(module_name)
            with open(module.__file__, "rb") as fh:  # type: ignore[arg-type]
                digest.update(fh.read())
        except (ImportError, OSError, TypeError):
            digest.update(b"unreadable")
    return digest.hexdigest()[:16]


class PersistentMemo:
    """A disk-backed memo shared across ``tune``/``sweep`` invocations.

    One pickle file holds ``{fingerprint, entries}``; entries whose
    fingerprint no longer matches the current cost models are discarded
    on load, so the file is always safe to keep *and* safe to delete.
    Keys are caller-built strings (see
    :func:`repro.parallel.search.plan_cache_key`); values are arbitrary
    picklable results.  ``maxsize`` bounds the entry count with LRU
    eviction, like :class:`MemoCache`.

    Writes are buffered: ``put`` marks the store dirty and ``flush``
    (also called by ``__exit__``) atomically replaces the file.
    """

    def __init__(
        self,
        path: str,
        fingerprint: Optional[str] = None,
        maxsize: Optional[int] = None,
    ) -> None:
        if maxsize is not None and maxsize < 1:
            raise ValueError(f"maxsize must be >= 1 or None, got {maxsize}")
        self.path = path
        self.fingerprint = fingerprint or cost_model_fingerprint()
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.stale_dropped = 0
        self._dirty = False
        self.entries: Dict[str, Any] = self._load()

    def _load(self) -> Dict[str, Any]:
        import os
        import pickle

        if not os.path.exists(self.path):
            return {}
        try:
            with open(self.path, "rb") as fh:
                payload = pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError, ImportError):
            return {}  # corrupt or foreign file: start fresh, never crash
        if not isinstance(payload, dict) or payload.get("fingerprint") != self.fingerprint:
            entries = payload.get("entries", {}) if isinstance(payload, dict) else {}
            self.stale_dropped = len(entries)
            return {}
        return dict(payload.get("entries", {}))

    def __contains__(self, key: str) -> bool:
        return key in self.entries

    def __len__(self) -> int:
        return len(self.entries)

    def get(self, key: str, default: Any = None) -> Any:
        """Look up one priced point, counting the hit or miss."""
        if key in self.entries:
            self.hits += 1
            value = self.entries.pop(key)
            self.entries[key] = value  # refresh recency
            return value
        self.misses += 1
        return default

    def put(self, key: str, value: Any) -> None:
        self.entries.pop(key, None)
        self.entries[key] = value
        if self.maxsize is not None and len(self.entries) > self.maxsize:
            oldest = next(iter(self.entries))
            del self.entries[oldest]
            self.evictions += 1
        self._dirty = True

    def flush(self) -> None:
        """Atomically persist the store (no-op when nothing changed)."""
        import os
        import pickle

        if not self._dirty:
            return
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        tmp = self.path + ".tmp"
        with open(tmp, "wb") as fh:
            pickle.dump({"fingerprint": self.fingerprint, "entries": self.entries}, fh)
        os.replace(tmp, self.path)
        self._dirty = False

    def __enter__(self) -> "PersistentMemo":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.flush()

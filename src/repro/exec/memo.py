"""Process-local memoization for the pure cost models.

The expensive sub-models priced during a sweep — transformer block costs,
collective times, optimizer step times — are pure functions of their
arguments, and the same argument tuples recur across sweep points (a
strong-scaling sweep changes only ``dp``; the block cost depends on
neither).  Decorating them with :func:`memoized` makes that reuse free
and *observable*: every cache keeps hit/miss counters that the sweep
executor snapshots into a :class:`~repro.exec.stats.SweepStats` report.

Caches are process-local by design.  Worker processes of the sweep
executor each build (or, under ``fork``, inherit) their own cache; the
executor merges per-task counter deltas back into one report.  Because
the memoized functions are pure, caching never changes results — serial
and parallel sweeps stay bit-for-bit identical.

This module must stay dependency-free within ``repro`` (the cost-model
modules import it at definition time).
"""

from __future__ import annotations

import functools
from typing import Any, Callable, Dict, Tuple, TypeVar

F = TypeVar("F", bound=Callable[..., Any])


class MemoCache:
    """One named memoization cache with hit/miss counters."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.store: Dict[Any, Any] = {}
        self.hits = 0
        self.misses = 0

    @property
    def calls(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.calls if self.calls else 0.0

    def clear(self) -> None:
        """Drop entries; counters are kept (they describe past calls)."""
        self.store.clear()

    def reset(self) -> None:
        """Drop entries *and* zero the counters."""
        self.store.clear()
        self.hits = 0
        self.misses = 0


# Registry of every cache created via @memoized, keyed by name.
_REGISTRY: Dict[str, MemoCache] = {}


def get_cache(name: str) -> MemoCache:
    """The cache registered under ``name`` (created on first use)."""
    cache = _REGISTRY.get(name)
    if cache is None:
        cache = _REGISTRY[name] = MemoCache(name)
    return cache


def registered_caches() -> Dict[str, MemoCache]:
    """A live view of all registered caches, by name."""
    return dict(_REGISTRY)


def memoized(name: str) -> Callable[[F], F]:
    """Memoize a pure function under a named, inspectable cache.

    The key is the full positional + keyword argument tuple; unhashable
    arguments fall through to a plain call (counted as a miss) so the
    decorator never changes semantics.  The wrapped function gains a
    ``cache`` attribute (its :class:`MemoCache`) and a
    ``__wrapped__`` attribute (the raw function).
    """

    def decorate(fn: F) -> F:
        cache = get_cache(name)

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            key = args if not kwargs else (args, tuple(sorted(kwargs.items())))
            try:
                hit = key in cache.store
            except TypeError:  # unhashable argument: bypass the cache
                cache.misses += 1
                return fn(*args, **kwargs)
            if hit:
                cache.hits += 1
                return cache.store[key]
            cache.misses += 1
            value = fn(*args, **kwargs)
            cache.store[key] = value
            return value

        wrapper.cache = cache  # type: ignore[attr-defined]
        return wrapper  # type: ignore[return-value]

    return decorate


# -- counter snapshots (used by the sweep executor) ---------------------------

Snapshot = Dict[str, Tuple[int, int]]  # name -> (hits, misses)


def cache_snapshot() -> Snapshot:
    """Current (hits, misses) of every registered cache."""
    return {name: (c.hits, c.misses) for name, c in _REGISTRY.items()}


def cache_delta(before: Snapshot, after: Snapshot) -> Snapshot:
    """Counter growth between two snapshots (missing names count from 0)."""
    delta: Snapshot = {}
    for name, (hits, misses) in after.items():
        h0, m0 = before.get(name, (0, 0))
        delta[name] = (hits - h0, misses - m0)
    return delta


def merge_deltas(deltas: Tuple[Snapshot, ...] | list) -> Snapshot:
    """Sum counter deltas from independent tasks/processes."""
    total: Dict[str, Tuple[int, int]] = {}
    for delta in deltas:
        for name, (hits, misses) in delta.items():
            h0, m0 = total.get(name, (0, 0))
            total[name] = (h0 + hits, m0 + misses)
    return total


def clear_caches() -> None:
    """Drop all cached entries (counters survive)."""
    for cache in _REGISTRY.values():
        cache.clear()


def reset_caches() -> None:
    """Drop all cached entries and zero all counters."""
    for cache in _REGISTRY.values():
        cache.reset()

"""MegaScale reproduction: LLM training systems at 10,000+ GPU scale.

A simulation-grade reimplementation of "MegaScale: Scaling Large Language
Model Training to More Than 10,000 GPUs" (NSDI 2024): the training
iteration engine with 3D-parallel communication overlap, the CLOS
datacenter fabric, collective cost models, the robust-training
fault-tolerance framework, the observability toolchain, and real numpy
convergence microbenchmarks.

Quick start::

    from repro import compare, job_175b

    print(compare(job_175b(n_gpus=1024, global_batch=768)).summary())
"""

from .core import (
    Comparison,
    FeatureSet,
    JobReport,
    MEGASCALE,
    MEGASCALE_ISO_BATCH,
    MEGATRON_LM,
    TrainingJob,
    TrainingSystem,
    ablation_sequence,
    compare,
    job_175b,
    job_530b,
    megascale,
    megatron_lm,
    render_table,
)

__version__ = "1.0.0"

__all__ = [
    "Comparison",
    "FeatureSet",
    "JobReport",
    "MEGASCALE",
    "MEGASCALE_ISO_BATCH",
    "MEGATRON_LM",
    "TrainingJob",
    "TrainingSystem",
    "__version__",
    "ablation_sequence",
    "compare",
    "job_175b",
    "job_530b",
    "megascale",
    "megatron_lm",
    "render_table",
]

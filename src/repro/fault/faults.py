"""Fault catalog and injection (§4, §6.3).

Fault kinds cover the spectrum the paper reports: explicit software
crashes (CUDA error, segfault), hardware failures (GPU ECC, NIC down),
silent degradations (slow host, bandwidth-degraded NIC), and the nasty
probabilistic NCCL hangs of §5.2.  Each kind declares how it manifests,
which is what determines how the robust-training framework can detect it:

* ``explicit`` — the training process dies or logs an error keyword;
  heartbeats report it immediately.
* ``hang`` — the process blocks inside NCCL; heartbeats continue but
  RDMA traffic ceases.
* ``silent`` — training proceeds, slower; only the CUDA-event heat-map
  analysis (§5.1) finds the culprit.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..hardware.node import Node


class Manifestation(enum.Enum):
    EXPLICIT = "explicit"
    HANG = "hang"
    SILENT = "silent"


@dataclass(frozen=True)
class FaultKind:
    """A class of failure with its occurrence rate and manifestation."""

    name: str
    manifestation: Manifestation
    weekly_rate_per_node: float  # expected occurrences per node-week
    auto_detectable: bool  # covered by heartbeats + diagnostic tests
    apply: Callable[[Node], None] = field(compare=False, default=lambda node: None)
    # Throughput the job sustains while the fault is active but undetected
    # (synchronous training is gated by its slowest participant, so one
    # silently-slow host drags the whole job to this fraction).
    degraded_throughput: float = 1.0
    # Whether recovery must swap the affected hosts for spares (hardware
    # death) or the hosts come back on their own (network faults that end
    # with a switch failover / reroute).
    needs_replacement: bool = True
    # Extra fixed repair latency beyond diagnosis + replacement (e.g. a
    # switch failover) charged during recovery.
    repair_time: float = 0.0


def _kill_gpu(node: Node) -> None:
    node.gpus[0].healthy = False


def _down_nic(node: Node) -> None:
    node.nics[0].degrade(0.0)


def _degrade_nic(node: Node) -> None:
    node.nics[0].degrade(0.4)


def _slow_host(node: Node) -> None:
    node.set_speed_factor(0.9)


def _mark_unhealthy(node: Node) -> None:
    node.healthy = False


# Rates sum to roughly 100+ failures over several weeks at ~1250 nodes
# for the >90%-auto-detected mix the paper reports (§6.2, §6.3).
CUDA_ERROR = FaultKind("cuda-error", Manifestation.EXPLICIT, 6.0e-3, True, _mark_unhealthy)
SEGFAULT = FaultKind("segfault", Manifestation.EXPLICIT, 3.0e-3, True, _mark_unhealthy)
GPU_ECC = FaultKind("gpu-ecc", Manifestation.EXPLICIT, 4.2e-3, True, _kill_gpu)
NIC_DOWN = FaultKind("nic-down", Manifestation.EXPLICIT, 2.1e-3, True, _down_nic)
NCCL_HANG = FaultKind("nccl-hang", Manifestation.HANG, 1.8e-3, True, _mark_unhealthy)
NIC_DEGRADED = FaultKind(
    "nic-degraded", Manifestation.SILENT, 0.75e-3, False, _degrade_nic,
    degraded_throughput=0.85,
)
SLOW_HOST = FaultKind(
    "slow-host", Manifestation.SILENT, 0.75e-3, False, _slow_host,
    degraded_throughput=0.9,
)

FAULT_CATALOG: List[FaultKind] = [
    CUDA_ERROR,
    SEGFAULT,
    GPU_ECC,
    NIC_DOWN,
    NCCL_HANG,
    NIC_DEGRADED,
    SLOW_HOST,
]


@dataclass(frozen=True)
class FaultEvent:
    """One sampled failure occurrence.

    Single-node faults leave ``node_indices`` empty and name their victim
    via ``node_index``.  Correlated (domain) faults list every affected
    node in ``node_indices`` and label their blast radius in ``domain``.
    """

    time: float  # seconds into the run
    kind: FaultKind
    node_index: int  # index into the active node list
    node_indices: Tuple[int, ...] = ()
    domain: Optional[str] = None  # e.g. "rack3", "tor1", "pod0-leaf"

    @property
    def affected_nodes(self) -> Tuple[int, ...]:
        return self.node_indices if self.node_indices else (self.node_index,)

    @property
    def blast_radius(self) -> int:
        return len(self.affected_nodes)


def auto_detectable_fraction(events: List[FaultEvent]) -> float:
    """Fraction the robust framework handles without humans (paper: >90%)."""
    if not events:
        return 1.0
    return sum(1 for e in events if e.kind.auto_detectable) / len(events)


def event_order(event: FaultEvent) -> Tuple[float, str, int]:
    """The canonical sort key for merged fault timelines."""
    return (event.time, event.kind.name, event.node_index)


SAMPLERS = ("auto", "vectorized", "reference")


class FaultInjector:
    """Samples fault arrivals for a cluster over a time horizon.

    Sampling is **count-first**: the event count of each stream is drawn
    as one Poisson variate, then the arrival times, kinds and victims are
    drawn as flat phases (all times, then all kinds, then all nodes) —
    the standard conditional construction of a Poisson process (counts
    are Poisson, arrivals given the count are i.i.d. uniforms).  Because
    NumPy's ``Generator`` fills an array with exactly the draws a scalar
    loop would make, the vectorized path (one array op per phase) and the
    per-event reference loop consume identical generator streams and
    return identical events; ``sampler="reference"`` keeps the Python
    loop alive as the property-tested oracle, ``"vectorized"`` (what
    ``"auto"`` resolves to) is the production path the Monte Carlo
    campaign engine leans on.
    """

    def __init__(
        self,
        n_nodes: int,
        rng: Optional[np.random.Generator] = None,
        catalog: Optional[List[FaultKind]] = None,
        rate_multiplier: float = 1.0,
        sampler: str = "auto",
    ) -> None:
        if n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        if rate_multiplier <= 0:
            raise ValueError("rate_multiplier must be positive")
        if sampler not in SAMPLERS:
            raise ValueError(f"sampler must be one of {SAMPLERS}, got {sampler!r}")
        self.n_nodes = n_nodes
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.catalog = catalog if catalog is not None else FAULT_CATALOG
        self.rate_multiplier = rate_multiplier
        self.sampler = sampler

    def cluster_rate_per_second(self) -> float:
        """Aggregate fault rate across all nodes and kinds."""
        weekly = sum(k.weekly_rate_per_node for k in self.catalog) * self.n_nodes
        return weekly * self.rate_multiplier / (7 * 86400)

    def _kind_cdf(self) -> np.ndarray:
        weights = np.array([k.weekly_rate_per_node for k in self.catalog], dtype=float)
        return np.cumsum(weights / weights.sum())

    # -- the two equivalent samplers ---------------------------------------

    def _node_events_reference(self, horizon: float) -> List[FaultEvent]:
        """Per-event Python loop in the canonical phase order (the oracle)."""
        rate = self.cluster_rate_per_second()
        if rate <= 0:
            return []
        n = int(self.rng.poisson(rate * horizon))
        cdf = self._kind_cdf()
        last = len(self.catalog) - 1
        times = [horizon * float(self.rng.random()) for _ in range(n)]
        kinds = [
            min(int(np.searchsorted(cdf, self.rng.random(), side="right")), last)
            for _ in range(n)
        ]
        nodes = [int(self.rng.integers(0, self.n_nodes)) for _ in range(n)]
        return [
            FaultEvent(time=times[i], kind=self.catalog[kinds[i]], node_index=nodes[i])
            for i in range(n)
        ]

    def _node_events_vectorized(self, horizon: float) -> List[FaultEvent]:
        """One numpy draw per phase; stream-identical to the reference."""
        rate = self.cluster_rate_per_second()
        if rate <= 0:
            return []
        n = int(self.rng.poisson(rate * horizon))
        cdf = self._kind_cdf()
        times = horizon * self.rng.random(n)
        kinds = np.minimum(
            np.searchsorted(cdf, self.rng.random(n), side="right"), len(self.catalog) - 1
        )
        nodes = self.rng.integers(0, self.n_nodes, size=n)
        return [
            FaultEvent(
                time=float(times[i]),
                kind=self.catalog[int(kinds[i])],
                node_index=int(nodes[i]),
            )
            for i in range(n)
        ]

    def _extra_events(self, horizon: float, vectorized: bool) -> List[FaultEvent]:
        """Hook for subclasses that sample additional streams (domains)."""
        return []

    def sample(self, horizon: float) -> List[FaultEvent]:
        """Poisson arrivals over ``[0, horizon)`` seconds, time-ordered."""
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        vectorized = self.sampler != "reference"
        if vectorized:
            events = self._node_events_vectorized(horizon)
        else:
            events = self._node_events_reference(horizon)
        events.extend(self._extra_events(horizon, vectorized))
        events.sort(key=event_order)
        return events

    def sample_reference(self, horizon: float) -> List[FaultEvent]:
        """Force the per-event oracle path regardless of ``sampler``."""
        saved, self.sampler = self.sampler, "reference"
        try:
            return self.sample(horizon)
        finally:
            self.sampler = saved

    def sample_vectorized(self, horizon: float) -> List[FaultEvent]:
        """Force the batched numpy path regardless of ``sampler``."""
        saved, self.sampler = self.sampler, "vectorized"
        try:
            return self.sample(horizon)
        finally:
            self.sampler = saved

    def expected_faults(self, horizon: float) -> float:
        return self.cluster_rate_per_second() * horizon

"""Heartbeat messages (§4.2).

Each node's training daemon sends the driver a periodic heartbeat
carrying the executor's identity, the training-process status, recent
stdout/stderr lines, and RDMA traffic counters.  The detector
(:mod:`repro.fault.detector`) turns streams of these into verdicts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple


@dataclass(frozen=True)
class HeartbeatMessage:
    """One heartbeat from one executor."""

    time: float
    node_id: int
    ip: str
    pod_name: str
    process_status: str  # "running" | "error" | "exited"
    log_lines: Tuple[str, ...] = ()
    rdma_tx_rate: float = 0.0  # bytes/s over the last interval
    rdma_rx_rate: float = 0.0


# Log keywords whose appearance triggers an immediate real-time alert.
ERROR_KEYWORDS = (
    "CUDA error",
    "CUDA out of memory",
    "Segmentation fault",
    "NCCL timeout",
    "ECC error",
    "uncorrectable",
    "link down",
)


def scan_log_lines(lines: Tuple[str, ...]) -> List[str]:
    """Return the error keywords present in a heartbeat's log lines."""
    found = []
    for keyword in ERROR_KEYWORDS:
        if any(keyword.lower() in line.lower() for line in lines):
            found.append(keyword)
    return found


@dataclass
class HeartbeatHistory:
    """Driver-side record of one executor's heartbeats."""

    node_id: int
    beats: List[HeartbeatMessage] = field(default_factory=list)

    def record(self, beat: HeartbeatMessage) -> None:
        if beat.node_id != self.node_id:
            raise ValueError(f"heartbeat for node {beat.node_id} recorded on {self.node_id}")
        if self.beats and beat.time < self.beats[-1].time:
            raise ValueError("heartbeats must arrive in time order")
        self.beats.append(beat)

    @property
    def last_seen(self) -> float:
        return self.beats[-1].time if self.beats else float("-inf")

    def silent_for(self, now: float) -> float:
        return now - self.last_seen

    def rdma_rates(self, window: int = 30) -> List[float]:
        """Recent tx+rx rates, oldest first."""
        recent = self.beats[-window:]
        return [b.rdma_tx_rate + b.rdma_rx_rate for b in recent]

"""Fault tolerance: faults, heartbeats, detection, diagnostics, recovery."""

from .checkpoint import CheckpointCost, CheckpointPlanner, HdfsModel, lost_progress
from .detector import Anomaly, AnomalyDetector, Verdict
from .diagnostics import (
    DiagnosticResult,
    DiagnosticSuite,
    LoopbackTest,
    NcclAllReduceTest,
    NcclAllToAllTest,
    RnicToRnicTest,
)
from .driver import (
    ProductionRun,
    ProductionRunConfig,
    ProductionRunResult,
    RobustTrainingDriver,
    catch_up_time,
    default_loss_curve,
)
from .executor import Executor
from .faults import (
    FAULT_CATALOG,
    FaultEvent,
    FaultInjector,
    FaultKind,
    Manifestation,
    auto_detectable_fraction,
)
from .interval import IntervalPlan, expected_overhead_fraction, plan_interval, young_daly_interval
from .scenarios import ALL_SCENARIOS, Scenario, ScenarioOutcome, run_all
from .heartbeat import ERROR_KEYWORDS, HeartbeatHistory, HeartbeatMessage, scan_log_lines
from .manual import EvictionTicket, ManualEvictionQueue, TicketState
from .kubernetes import MockKubernetes, Pod
from .recovery import RecoveryLog, RecoveryRecord, effective_training_rate

__all__ = [
    "Anomaly",
    "AnomalyDetector",
    "CheckpointCost",
    "CheckpointPlanner",
    "DiagnosticResult",
    "DiagnosticSuite",
    "ERROR_KEYWORDS",
    "Executor",
    "FAULT_CATALOG",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "HdfsModel",
    "HeartbeatHistory",
    "IntervalPlan",
    "ALL_SCENARIOS",
    "Scenario",
    "ScenarioOutcome",
    "HeartbeatMessage",
    "LoopbackTest",
    "Manifestation",
    "MockKubernetes",
    "EvictionTicket",
    "ManualEvictionQueue",
    "TicketState",
    "NcclAllReduceTest",
    "NcclAllToAllTest",
    "Pod",
    "ProductionRun",
    "ProductionRunConfig",
    "ProductionRunResult",
    "RecoveryLog",
    "RecoveryRecord",
    "RnicToRnicTest",
    "RobustTrainingDriver",
    "Verdict",
    "auto_detectable_fraction",
    "catch_up_time",
    "default_loss_curve",
    "effective_training_rate",
    "lost_progress",
    "scan_log_lines",
    "expected_overhead_fraction",
    "plan_interval",
    "run_all",
    "young_daly_interval",
]

"""Driver-side anomaly detection (§4.2).

Three independent signals, mirroring the paper:

1. **Missed heartbeats** — no beat within the timeout window: the node
   (or its daemon) is gone.
2. **Log keywords / explicit status** — the training process reported an
   error or its logs contain a known-fatal keyword: immediate alert.
3. **RDMA traffic** — training traffic is periodic; a collapse to ~zero
   with heartbeats still flowing indicates a hang (automatic recovery);
   a significant *decline* indicates degradation (alert for manual
   investigation).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from .heartbeat import HeartbeatHistory, scan_log_lines


class Verdict(enum.Enum):
    HEALTHY = "healthy"
    MISSING_HEARTBEAT = "missing-heartbeat"
    EXPLICIT_ERROR = "explicit-error"
    TRAFFIC_CEASED = "traffic-ceased"  # auto recovery (hang)
    TRAFFIC_DECLINED = "traffic-declined"  # alert for manual investigation


@dataclass(frozen=True)
class Anomaly:
    node_id: int
    verdict: Verdict
    detail: str = ""

    @property
    def triggers_auto_recovery(self) -> bool:
        return self.verdict in (
            Verdict.MISSING_HEARTBEAT,
            Verdict.EXPLICIT_ERROR,
            Verdict.TRAFFIC_CEASED,
        )


@dataclass
class AnomalyDetector:
    """Evaluates heartbeat histories against the three §4.2 rules."""

    heartbeat_timeout: float = 30.0  # seconds without a beat
    traffic_floor: float = 1e6  # bytes/s below which traffic "ceased"
    decline_ratio: float = 0.5  # sustained drop below this fraction alerts

    def __post_init__(self) -> None:
        if self.heartbeat_timeout <= 0:
            raise ValueError("heartbeat_timeout must be positive")
        if not 0 < self.decline_ratio < 1:
            raise ValueError("decline_ratio must be in (0, 1)")

    def check(self, history: HeartbeatHistory, now: float) -> Optional[Anomaly]:
        """Evaluate one node; ``None`` means healthy."""
        if history.silent_for(now) > self.heartbeat_timeout:
            return Anomaly(
                history.node_id,
                Verdict.MISSING_HEARTBEAT,
                f"silent for {history.silent_for(now):.0f}s",
            )
        if not history.beats:
            return None
        last = history.beats[-1]
        if last.process_status != "running":
            return Anomaly(history.node_id, Verdict.EXPLICIT_ERROR, last.process_status)
        keywords = scan_log_lines(last.log_lines)
        if keywords:
            return Anomaly(history.node_id, Verdict.EXPLICIT_ERROR, ", ".join(keywords))
        rates = history.rdma_rates()
        if len(rates) >= 3:
            baseline = max(rates[: len(rates) // 2]) if rates[: len(rates) // 2] else 0.0
            current = rates[-1]
            if baseline > self.traffic_floor and current < self.traffic_floor:
                return Anomaly(history.node_id, Verdict.TRAFFIC_CEASED, "rdma traffic stopped")
            if baseline > self.traffic_floor and current < baseline * self.decline_ratio:
                return Anomaly(
                    history.node_id,
                    Verdict.TRAFFIC_DECLINED,
                    f"rdma rate {current / baseline:.0%} of baseline",
                )
        return None

    def sweep(self, histories: List[HeartbeatHistory], now: float) -> List[Anomaly]:
        """Check every node; returns the anomalies found."""
        anomalies = []
        for history in histories:
            anomaly = self.check(history, now)
            if anomaly is not None:
                anomalies.append(anomaly)
        return anomalies

"""Correlated fault domains: rack-, ToR-, and leaf-link-level blast radii.

The paper's war stories (§6.3) and the RAPID-LLM line of work agree that
the failures which actually threaten the >90% effective-training-time
goal are not independent single-node events: a PSU trips and a whole
rack powers off; a ToR switch dies and every server it fronts hangs in
NCCL; a leaf (ToR→agg) link degrades and an entire pod's collectives
silently slow down.  This module models those domains on top of the
same CLOS layout :mod:`repro.network.topology` builds:

* **rack** — ``nodes_per_rack`` servers share power and cooling; a PSU
  fault kills all of them at once and each needs a spare.
* **tor** — a ToR switch serves every server in its pod on one rail;
  its failure manifests as a pod-wide NCCL hang, cleared by a switch
  failover (no host replacement).
* **leaf-link** — a ToR→aggregation uplink degrades; the pod's traffic
  still flows (ECMP around it) but at reduced bandwidth, a silent
  throughput degradation only the heat-map analysis catches.

:class:`CorrelatedFaultInjector` samples these domain events alongside
the independent single-node catalog of :class:`~repro.fault.faults.FaultInjector`
from one seeded generator, so a seed fully determines the merged,
time-ordered event list.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..network.topology import ClosFabric
from .faults import (
    FaultEvent,
    FaultInjector,
    FaultKind,
    Manifestation,
    _degrade_nic,
    _mark_unhealthy,
)


# Domain-scoped fault kinds.  ``weekly_rate_per_node`` is zero: these are
# priced per *domain* by the injector, never by the node catalog.
RACK_POWER_FAULT = FaultKind(
    "rack-psu",
    Manifestation.EXPLICIT,
    0.0,
    True,
    _mark_unhealthy,
    needs_replacement=True,
)
TOR_SWITCH_FAULT = FaultKind(
    "tor-switch",
    Manifestation.HANG,
    0.0,
    True,
    _mark_unhealthy,
    needs_replacement=False,
    repair_time=300.0,  # switch failover + route reconvergence
)
LEAF_LINK_FAULT = FaultKind(
    "leaf-link-degraded",
    Manifestation.SILENT,
    0.0,
    False,
    _degrade_nic,
    degraded_throughput=0.7,
    needs_replacement=False,
    repair_time=120.0,  # drain + replace the optic / reroute
)


@dataclass(frozen=True)
class FaultDomain:
    """A correlated blast radius with its per-domain occurrence rate."""

    name: str
    kind: FaultKind
    weekly_rate_per_domain: float
    scope: str  # "rack" or "pod"

    def __post_init__(self) -> None:
        if self.weekly_rate_per_domain < 0:
            raise ValueError("domain rate must be non-negative")
        if self.scope not in ("rack", "pod"):
            raise ValueError(f"unknown domain scope {self.scope!r}")


# Per-domain weekly rates: racks fail rarely but constantly across a big
# fleet; switch/link events are per-pod.  At 1536 nodes (192 racks, 24
# pods) this yields a handful of correlated events per multi-week run —
# rare enough to keep Figure 11 recognisable, common enough to exercise
# the degraded paths.
DEFAULT_DOMAINS: List[FaultDomain] = [
    FaultDomain("rack-psu", RACK_POWER_FAULT, 2.0e-3, scope="rack"),
    FaultDomain("tor-switch", TOR_SWITCH_FAULT, 1.0e-3, scope="pod"),
    FaultDomain("leaf-link", LEAF_LINK_FAULT, 4.0e-3, scope="pod"),
]


@dataclass(frozen=True)
class DomainTopology:
    """Maps node indices onto racks and pods (mirrors the CLOS layout)."""

    n_nodes: int
    nodes_per_rack: int = 8
    nodes_per_pod: int = 64

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("topology needs at least one node")
        if self.nodes_per_rack < 1 or self.nodes_per_pod < 1:
            raise ValueError("rack and pod sizes must be positive")
        if self.nodes_per_pod % self.nodes_per_rack != 0:
            raise ValueError("racks must tile pods exactly")

    @classmethod
    def from_fabric(cls, fabric: ClosFabric, nodes_per_rack: int = 8) -> "DomainTopology":
        """Derive the domain map from a built CLOS fabric."""
        return cls(
            n_nodes=fabric.n_nodes,
            nodes_per_rack=min(nodes_per_rack, fabric.nodes_per_pod),
            nodes_per_pod=fabric.nodes_per_pod,
        )

    @property
    def n_racks(self) -> int:
        return -(-self.n_nodes // self.nodes_per_rack)

    @property
    def n_pods(self) -> int:
        return -(-self.n_nodes // self.nodes_per_pod)

    def rack_of(self, node: int) -> int:
        self._check(node)
        return node // self.nodes_per_rack

    def pod_of(self, node: int) -> int:
        self._check(node)
        return node // self.nodes_per_pod

    def nodes_in_rack(self, rack: int) -> List[int]:
        if not 0 <= rack < self.n_racks:
            raise ValueError(f"rack {rack} outside 0..{self.n_racks - 1}")
        start = rack * self.nodes_per_rack
        return list(range(start, min(start + self.nodes_per_rack, self.n_nodes)))

    def nodes_in_pod(self, pod: int) -> List[int]:
        if not 0 <= pod < self.n_pods:
            raise ValueError(f"pod {pod} outside 0..{self.n_pods - 1}")
        start = pod * self.nodes_per_pod
        return list(range(start, min(start + self.nodes_per_pod, self.n_nodes)))

    def group_for(self, scope: str, index: int) -> List[int]:
        if scope == "rack":
            return self.nodes_in_rack(index)
        if scope == "pod":
            return self.nodes_in_pod(index)
        raise ValueError(f"unknown scope {scope!r}")

    def n_domains(self, scope: str) -> int:
        if scope == "rack":
            return self.n_racks
        if scope == "pod":
            return self.n_pods
        raise ValueError(f"unknown scope {scope!r}")

    def _check(self, node: int) -> None:
        if not 0 <= node < self.n_nodes:
            raise ValueError(f"node {node} outside topology of {self.n_nodes}")


class CorrelatedFaultInjector(FaultInjector):
    """Samples independent node faults *and* correlated domain faults.

    All streams draw from the one seeded generator in a fixed order
    (node catalog first, then each domain in declaration order), so the
    merged event list is a deterministic function of the seed.  Each
    stream is sampled count-first (see :class:`FaultInjector`): the
    vectorized path batches every domain's times and indices into one
    numpy draw per phase, and the per-event reference loop consumes the
    identical generator stream, so both return identical events.
    """

    def __init__(
        self,
        n_nodes: int,
        topology: Optional[DomainTopology] = None,
        domains: Optional[List[FaultDomain]] = None,
        rng: Optional[np.random.Generator] = None,
        catalog: Optional[List[FaultKind]] = None,
        rate_multiplier: float = 1.0,
        sampler: str = "auto",
    ) -> None:
        super().__init__(
            n_nodes,
            rng=rng,
            catalog=catalog,
            rate_multiplier=rate_multiplier,
            sampler=sampler,
        )
        self.topology = topology or DomainTopology(n_nodes=n_nodes)
        if self.topology.n_nodes != n_nodes:
            raise ValueError("topology size must match n_nodes")
        self.domains = domains if domains is not None else list(DEFAULT_DOMAINS)

    def domain_rate_per_second(self, domain: FaultDomain) -> float:
        weekly = domain.weekly_rate_per_domain * self.topology.n_domains(domain.scope)
        return weekly * self.rate_multiplier / (7 * 86400)

    def cluster_rate_per_second(self) -> float:
        base = super().cluster_rate_per_second()
        return base + sum(self.domain_rate_per_second(d) for d in self.domains)

    def _domain_event(self, domain: FaultDomain, t: float, index: int) -> FaultEvent:
        group = self.topology.group_for(domain.scope, index)
        return FaultEvent(
            time=t,
            kind=domain.kind,
            node_index=group[0],
            node_indices=tuple(group),
            domain=f"{domain.scope}{index}",
        )

    def _extra_events(self, horizon: float, vectorized: bool) -> List[FaultEvent]:
        events: List[FaultEvent] = []
        for domain in self.domains:
            rate = self.domain_rate_per_second(domain)
            if rate <= 0:
                continue
            n_domains = self.topology.n_domains(domain.scope)
            n = int(self.rng.poisson(rate * horizon))
            if vectorized:
                times = horizon * self.rng.random(n)
                indices = self.rng.integers(0, n_domains, size=n)
                events.extend(
                    self._domain_event(domain, float(times[i]), int(indices[i]))
                    for i in range(n)
                )
            else:
                times = [horizon * float(self.rng.random()) for _ in range(n)]
                indices = [int(self.rng.integers(0, n_domains)) for _ in range(n)]
                events.extend(
                    self._domain_event(domain, times[i], indices[i]) for i in range(n)
                )
        return events

"""Manual eviction interface (§4.1).

"Additionally, we provide a user interface that allows for manual
eviction of nodes, particularly for those identified through manual
analysis as in §5."  This is that interface: operators file eviction
tickets (with the evidence that motivated them), the driver consumes the
queue during its next recovery pass, and everything is audit-logged.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List


class TicketState(enum.Enum):
    PENDING = "pending"
    APPROVED = "approved"
    EXECUTED = "executed"
    REJECTED = "rejected"


@dataclass
class EvictionTicket:
    """One operator-filed request to remove a node."""

    ticket_id: int
    node_id: int
    reason: str
    evidence: str  # e.g. "heat-map outlier (+11% fwd latency over 2k steps)"
    filed_by: str
    state: TicketState = TicketState.PENDING
    resolution: str = ""

    def __post_init__(self) -> None:
        if not self.reason:
            raise ValueError("a ticket needs a reason")


@dataclass
class ManualEvictionQueue:
    """Ticket queue + audit log consumed by the robust-training driver."""

    tickets: List[EvictionTicket] = field(default_factory=list)
    audit_log: List[str] = field(default_factory=list)
    _next_id: int = 1

    def file(self, node_id: int, reason: str, evidence: str = "", filed_by: str = "oncall") -> EvictionTicket:
        ticket = EvictionTicket(
            ticket_id=self._next_id,
            node_id=node_id,
            reason=reason,
            evidence=evidence,
            filed_by=filed_by,
        )
        self._next_id += 1
        self.tickets.append(ticket)
        self.audit_log.append(
            f"ticket #{ticket.ticket_id}: {filed_by} requested eviction of node "
            f"{node_id} ({reason})"
        )
        return ticket

    def pending(self) -> List[EvictionTicket]:
        return [t for t in self.tickets if t.state is TicketState.PENDING]

    def approve(self, ticket_id: int, approver: str = "driver") -> EvictionTicket:
        ticket = self._get(ticket_id)
        if ticket.state is not TicketState.PENDING:
            raise ValueError(f"ticket #{ticket_id} is {ticket.state.value}, not pending")
        ticket.state = TicketState.APPROVED
        self.audit_log.append(f"ticket #{ticket_id}: approved by {approver}")
        return ticket

    def reject(self, ticket_id: int, why: str) -> EvictionTicket:
        ticket = self._get(ticket_id)
        if ticket.state is not TicketState.PENDING:
            raise ValueError(f"ticket #{ticket_id} is {ticket.state.value}, not pending")
        ticket.state = TicketState.REJECTED
        ticket.resolution = why
        self.audit_log.append(f"ticket #{ticket_id}: rejected ({why})")
        return ticket

    def execute_approved(self, kubernetes) -> List[int]:
        """Evict every approved node through Kubernetes; returns node ids."""
        executed = []
        for ticket in self.tickets:
            if ticket.state is not TicketState.APPROVED:
                continue
            replacement = kubernetes.block_and_replace(ticket.node_id)
            ticket.state = TicketState.EXECUTED
            ticket.resolution = f"replaced by node {replacement.node_id}"
            self.audit_log.append(
                f"ticket #{ticket.ticket_id}: executed — node {ticket.node_id} "
                f"replaced by {replacement.node_id}"
            )
            executed.append(ticket.node_id)
        return executed

    def _get(self, ticket_id: int) -> EvictionTicket:
        for ticket in self.tickets:
            if ticket.ticket_id == ticket_id:
                return ticket
        raise KeyError(f"no ticket #{ticket_id}")

    def history_of(self, node_id: int) -> List[EvictionTicket]:
        return [t for t in self.tickets if t.node_id == node_id]

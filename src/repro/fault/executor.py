"""Per-node executor with a robust-training daemon (§4.1).

One executor manages one node: it launches the training processes and a
daemon that heartbeats the driver.  The executor's behaviour under fault
follows the fault's manifestation: explicit faults change the reported
status / logs, hangs keep heartbeats flowing while RDMA traffic stops,
crashes silence the heartbeat altogether.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..hardware.node import Node
from ..sim import Channel, Process, Simulator
from .faults import FaultKind, Manifestation
from .heartbeat import HeartbeatMessage

# Steady-state RDMA rate a healthy training node reports (order of the
# per-NIC DP/PP traffic duty cycle).
HEALTHY_RDMA_RATE = 12e9


@dataclass
class Executor:
    """Simulated executor: heartbeats + fault manifestation."""

    sim: Simulator
    node: Node
    channel: Channel  # to the driver
    heartbeat_interval: float = 10.0
    pod_name: str = ""
    active_fault: Optional[FaultKind] = None
    stopped: bool = False
    _proc: Optional[Process] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        if not self.pod_name:
            self.pod_name = f"pod-{self.node.node_id}"

    def start(self) -> None:
        self._proc = Process(self.sim, self._run(), name=f"executor-{self.node.node_id}")

    def stop(self) -> None:
        self.stopped = True
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("stop")

    def inject(self, fault: FaultKind) -> None:
        """Apply a fault to this node; manifestation drives the beats."""
        fault.apply(self.node)
        self.active_fault = fault

    def clear_fault(self) -> None:
        self.active_fault = None

    # -- daemon ------------------------------------------------------------

    def _run(self):
        while not self.stopped:
            yield self.sim.timeout(self.heartbeat_interval)
            if self.stopped:
                return
            beat = self._compose_heartbeat()
            if beat is not None:
                self.channel.send(beat)

    def _compose_heartbeat(self) -> Optional[HeartbeatMessage]:
        fault = self.active_fault
        if fault is not None and fault.manifestation is Manifestation.EXPLICIT:
            # Process died: daemon reports the error once, with logs.
            return HeartbeatMessage(
                time=self.sim.now,
                node_id=self.node.node_id,
                ip=self.node.ip,
                pod_name=self.pod_name,
                process_status="error",
                log_lines=(self._log_line_for(fault),),
                rdma_tx_rate=0.0,
                rdma_rx_rate=0.0,
            )
        if fault is not None and fault.manifestation is Manifestation.HANG:
            # Hung in NCCL: process "running", traffic gone.
            return HeartbeatMessage(
                time=self.sim.now,
                node_id=self.node.node_id,
                ip=self.node.ip,
                pod_name=self.pod_name,
                process_status="running",
                rdma_tx_rate=0.0,
                rdma_rx_rate=0.0,
            )
        # Healthy or silently degraded: normal-looking heartbeat (the
        # silent case is exactly what heartbeats cannot catch).
        rate = HEALTHY_RDMA_RATE * self.node.speed_factor
        return HeartbeatMessage(
            time=self.sim.now,
            node_id=self.node.node_id,
            ip=self.node.ip,
            pod_name=self.pod_name,
            process_status="running",
            rdma_tx_rate=rate,
            rdma_rx_rate=rate,
        )

    @staticmethod
    def _log_line_for(fault: FaultKind) -> str:
        mapping = {
            "cuda-error": "RuntimeError: CUDA error: an illegal memory access was encountered",
            "segfault": "Segmentation fault (core dumped)",
            "gpu-ecc": "ECC error: uncorrectable error detected on GPU 0",
            "nic-down": "mlx5: link down on port 1",
        }
        return mapping.get(fault.name, f"fatal: {fault.name}")

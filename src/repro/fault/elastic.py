"""Elastic degraded-mode recovery: shrink DP instead of stalling (§4 ext).

When a fault (or a correlated rack fault) claims more nodes than the
spare pool can replace, the paper's alternative to paging an operator
and stalling the job is to *keep training smaller*: drop the dead
data-parallel replicas, re-plan to the largest DP degree the surviving
GPUs support, and resume at reduced throughput until capacity returns.

The re-plan goes through :func:`repro.parallel.tuner.shrink_dp_plans`
so it honours the same structural constraints as the original tuner
(model-parallel layout fixed, batch divisibility, optional memory
feasibility when the model is known).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..hardware.gpu import GpuSpec
from ..model.transformer import ModelSpec
from ..parallel.plan import ParallelPlan
from ..parallel.tuner import feasible as plan_feasible
from ..parallel.tuner import iter_shrink_dp_plans


@dataclass(frozen=True)
class ElasticDecision:
    """Outcome of one spare-exhausted re-plan."""

    old_plan: ParallelPlan
    new_plan: ParallelPlan
    available_gpus: int

    @property
    def throughput_factor(self) -> float:
        """Fraction of healthy tokens-per-iteration the new plan sustains.

        Per-replica batch is held constant, so tokens scale with DP.
        """
        return self.new_plan.dp / self.old_plan.dp

    def describe(self) -> str:
        return (
            f"dp {self.old_plan.dp} -> {self.new_plan.dp} on {self.available_gpus} GPUs "
            f"({self.throughput_factor:.0%} throughput)"
        )


@dataclass
class ElasticReplanner:
    """Picks the least-lossy shrunken plan for the surviving GPU count.

    ``model``/``gpu``/``global_batch`` are optional refinements: when the
    model is known, candidates must also fit in memory; when the global
    batch is known, it must divide into per-replica batches.  Without
    them the re-plan is structural only (the common production-run case,
    where the plan is the unit of simulation).
    """

    model: Optional[ModelSpec] = None
    gpu: Optional[GpuSpec] = None
    global_batch: Optional[int] = None

    def _acceptable(self, candidate: ParallelPlan) -> bool:
        if self.global_batch is not None:
            try:
                candidate.n_microbatches(self.global_batch)
            except ValueError:
                return False
        if self.model is not None and self.gpu is not None and self.global_batch is not None:
            return plan_feasible(self.model, candidate, self.gpu, self.global_batch)
        return True

    def replan(self, plan: ParallelPlan, available_gpus: int) -> Optional[ElasticDecision]:
        """Largest-DP feasible shrink, or ``None`` if nothing fits.

        Raises ``ValueError`` if ``available_gpus`` already covers the
        current plan (shrinking would be a no-op — the caller should
        simply replace nodes).
        """
        if available_gpus >= plan.world_size:
            raise ValueError("no shrink needed: plan already fits the available GPUs")
        for candidate in iter_shrink_dp_plans(plan, available_gpus):
            if self._acceptable(candidate):
                return ElasticDecision(
                    old_plan=plan, new_plan=candidate, available_gpus=available_gpus
                )
        return None

"""Fast checkpointing and recovery (§4.4), with integrity + retry.

**Two-stage save**: each GPU first dumps its state to pinned host memory
over PCIe (this is the only part that blocks training — "several
seconds"), then a background process drains host memory to the
distributed file system asynchronously.

**Optimized recovery**: GPU workers in the same data-parallel group share
the parameter partition, so a single reader per group pulls it from HDFS
and broadcasts to its peers, cutting the read load by the DP degree.

**Integrity + retry** (degraded mode): under recovery contention HDFS
reads and writes can fail transiently or return corrupt shards.  Every
read is checksum-verified; failures retry with exponential backoff until
a bounded timeout, after which the loader falls back to the N−1
checkpoint — correct but one full checkpoint interval more expensive,
which the caller must charge as extra lost iterations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..collectives.primitives import tree_broadcast
from ..hardware.node import NodeSpec
from ..model.memory import (
    OPTIMIZER_BYTES_PER_PARAM,
    PARAM_BYTES,
    checkpoint_bytes_per_gpu,
    params_per_gpu,
)
from ..model.transformer import ModelSpec
from ..parallel.plan import ParallelPlan


@dataclass(frozen=True)
class HdfsModel:
    """Distributed-filesystem throughput model."""

    aggregate_read_bandwidth: float = 60e9  # bytes/s across the cluster
    aggregate_write_bandwidth: float = 40e9
    per_client_bandwidth: float = 1.5e9  # one worker's stream

    def __post_init__(self) -> None:
        if min(
            self.aggregate_read_bandwidth,
            self.aggregate_write_bandwidth,
            self.per_client_bandwidth,
        ) <= 0:
            raise ValueError("HDFS bandwidths must be positive")

    def read_time(self, total_bytes: float, n_clients: int, bandwidth_factor: float = 1.0) -> float:
        """Time for ``n_clients`` to collectively read ``total_bytes``.

        ``bandwidth_factor`` scales effective throughput during degraded
        operation (lost NICs, congested recovery traffic).
        """
        if total_bytes < 0 or n_clients < 1 or not 0 < bandwidth_factor <= 1:
            raise ValueError("invalid read request")
        rate = min(self.aggregate_read_bandwidth, n_clients * self.per_client_bandwidth)
        return total_bytes / (rate * bandwidth_factor)

    def write_time(self, total_bytes: float, n_clients: int, bandwidth_factor: float = 1.0) -> float:
        if total_bytes < 0 or n_clients < 1 or not 0 < bandwidth_factor <= 1:
            raise ValueError("invalid write request")
        rate = min(self.aggregate_write_bandwidth, n_clients * self.per_client_bandwidth)
        return total_bytes / (rate * bandwidth_factor)


@dataclass(frozen=True)
class CheckpointCost:
    """Timing of one checkpoint under the two-stage scheme."""

    stage1_stall: float  # GPU -> host memory; blocks training
    stage2_async: float  # host memory -> HDFS; off the critical path

    @property
    def training_interruption(self) -> float:
        return self.stage1_stall


@dataclass
class CheckpointPlanner:
    """Prices saves and restores for one (model, plan) deployment."""

    model: ModelSpec
    plan: ParallelPlan
    node: NodeSpec = None  # type: ignore[assignment]
    hdfs: HdfsModel = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.node is None:
            self.node = NodeSpec()
        if self.hdfs is None:
            self.hdfs = HdfsModel()

    @property
    def bytes_per_gpu(self) -> float:
        return checkpoint_bytes_per_gpu(
            self.model, self.plan.tp, self.plan.pp, self.plan.dp, self.plan.zero_stage
        )

    @property
    def unique_bytes(self) -> float:
        """Checkpoint content with DP-duplicated parameters written once."""
        per_gpu_params = params_per_gpu(self.model, self.plan.tp, self.plan.pp)
        params = per_gpu_params * PARAM_BYTES * self.plan.tp * self.plan.pp
        optimizer = self.model.n_params * OPTIMIZER_BYTES_PER_PARAM
        return params + optimizer

    def save_cost(self, two_stage: bool = True) -> CheckpointCost:
        """Blocking stall + async drain of one checkpoint."""
        stage1 = self.bytes_per_gpu / self.node.gpu_spec.pcie_bandwidth
        writers = self.plan.world_size
        stage2 = self.hdfs.write_time(self.unique_bytes, writers)
        if two_stage:
            return CheckpointCost(stage1_stall=stage1, stage2_async=stage2)
        # Naive: training blocks until HDFS has everything.
        return CheckpointCost(stage1_stall=stage1 + stage2, stage2_async=0.0)

    def min_checkpoint_interval(self) -> float:
        """Shortest safe interval: the async drain must finish first."""
        return self.save_cost().stage2_async

    def load_with_retry(
        self,
        rng: np.random.Generator,
        integrity: "ShardIntegrityModel",
        policy: Optional["RetryPolicy"] = None,
        optimized: bool = True,
        bandwidth_factor: float = 1.0,
    ) -> "CheckpointLoadOutcome":
        """Load the latest checkpoint, verifying shards and retrying.

        Each attempt either fails transiently partway through (charged a
        partial read plus backoff) or completes and is checksummed; a
        corrupt shard costs the full read plus backoff.  After
        ``policy.max_attempts`` attempts or once cumulative retry time
        passes ``policy.timeout``, the loader falls back to the N−1
        checkpoint, which was verified when written and always loads.
        """
        policy = policy or RetryPolicy()
        base = self.recovery_time(optimized) / bandwidth_factor
        total = 0.0
        backoff = policy.base_backoff
        attempts = 0
        transient_failures = 0
        checksum_failures = 0
        fell_back = True
        for _ in range(policy.max_attempts):
            attempts += 1
            if integrity.io_fails(rng):
                # The stream died partway: charge a partial read.
                total += integrity.partial_read_fraction * base + backoff
                transient_failures += 1
            else:
                total += base + integrity.checksum_time
                if not integrity.read_corrupt(rng):
                    fell_back = False
                    break
                checksum_failures += 1
                total += backoff
            backoff *= policy.backoff_multiplier
            if total > policy.timeout:
                break
        if fell_back:
            total += base + integrity.checksum_time
        return CheckpointLoadOutcome(
            total_time=total,
            attempts=attempts,
            fell_back=fell_back,
            transient_failures=transient_failures,
            checksum_failures=checksum_failures,
        )

    def save_with_retry(
        self,
        rng: np.random.Generator,
        integrity: "ShardIntegrityModel",
        policy: Optional["RetryPolicy"] = None,
        two_stage: bool = True,
        bandwidth_factor: float = 1.0,
    ) -> "CheckpointSaveOutcome":
        """Two-stage save whose HDFS drain retries transient failures.

        Stage 1 (GPU → host) never fails in this model; only the HDFS
        upload is exposed to the network.  A drain that exhausts its
        retries reports ``committed=False`` — the previous checkpoint
        stays the newest durable one.
        """
        policy = policy or RetryPolicy()
        cost = self.save_cost(two_stage)
        drain = (cost.stage2_async if two_stage else 0.0) / bandwidth_factor
        blocking = cost.stage1_stall if two_stage else cost.stage1_stall / bandwidth_factor
        total_drain = 0.0
        backoff = policy.base_backoff
        attempts = 0
        committed = False
        for _ in range(policy.max_attempts):
            attempts += 1
            if integrity.io_fails(rng):
                total_drain += integrity.partial_read_fraction * drain + backoff
                backoff *= policy.backoff_multiplier
                if total_drain > policy.timeout:
                    break
                continue
            total_drain += drain + integrity.checksum_time
            committed = True
            break
        return CheckpointSaveOutcome(
            stall=blocking,
            drain_time=total_drain,
            attempts=attempts,
            committed=committed,
        )

    def recovery_time(self, optimized: bool = True) -> float:
        """Load the latest checkpoint into every GPU.

        Naive: every worker reads its partition directly (DP-duplicated
        parameter reads hammer HDFS).  Optimized: one reader per DP group
        + broadcast to peers.
        """
        if optimized:
            readers = self.plan.tp * self.plan.pp  # one per DP group
            read = self.hdfs.read_time(self.unique_bytes, readers)
            broadcast = tree_broadcast(
                self.bytes_per_gpu,
                self.plan.dp,
                self.node.nic_spec.line_rate,
                1e-5,
            )
            pcie = self.bytes_per_gpu / self.node.gpu_spec.pcie_bandwidth
            return read + broadcast + pcie
        total = self.bytes_per_gpu * self.plan.world_size
        read = self.hdfs.read_time(total, self.plan.world_size)
        pcie = self.bytes_per_gpu / self.node.gpu_spec.pcie_bandwidth
        return read + pcie


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with bounded attempts and cumulative timeout."""

    max_attempts: int = 4
    base_backoff: float = 5.0  # seconds before the first retry
    backoff_multiplier: float = 2.0
    timeout: float = 1800.0  # give up (fall back) past this much retry time

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("need at least one attempt")
        if self.base_backoff < 0 or self.backoff_multiplier < 1 or self.timeout <= 0:
            raise ValueError("invalid backoff parameters")


@dataclass(frozen=True)
class ShardIntegrityModel:
    """Per-attempt failure probabilities for checkpoint I/O.

    Both probabilities are per attempt; determinism comes from the
    caller's seeded generator.  ``partial_read_fraction`` is how much of
    a full transfer a transient failure wastes before it is detected.
    """

    corruption_probability: float = 0.0  # checksum mismatch on a completed read
    transient_failure_probability: float = 0.0  # stream dies mid-transfer
    checksum_time: float = 3.0  # one verification pass over the shards
    partial_read_fraction: float = 0.25

    def __post_init__(self) -> None:
        if not 0 <= self.corruption_probability < 1:
            raise ValueError("corruption probability must be in [0, 1)")
        if not 0 <= self.transient_failure_probability < 1:
            raise ValueError("transient failure probability must be in [0, 1)")
        if self.checksum_time < 0 or not 0 <= self.partial_read_fraction <= 1:
            raise ValueError("invalid timing parameters")

    def io_fails(self, rng: np.random.Generator) -> bool:
        return bool(rng.random() < self.transient_failure_probability)

    def read_corrupt(self, rng: np.random.Generator) -> bool:
        return bool(rng.random() < self.corruption_probability)


# A convenience instance for chaos runs: noticeable but survivable.
FLAKY_HDFS = ShardIntegrityModel(
    corruption_probability=0.05, transient_failure_probability=0.1
)


@dataclass(frozen=True)
class CheckpointLoadOutcome:
    """What one integrity-checked restore actually cost."""

    total_time: float
    attempts: int
    fell_back: bool  # loaded the N-1 checkpoint instead of the newest
    transient_failures: int
    checksum_failures: int


@dataclass(frozen=True)
class CheckpointSaveOutcome:
    """What one integrity-checked save actually cost."""

    stall: float  # on-path training interruption
    drain_time: float  # background HDFS upload including retries
    attempts: int
    committed: bool  # False: the drain gave up; previous checkpoint stands


def lost_progress(checkpoint_interval_iterations: int, iteration_time: float) -> float:
    """Expected training time lost to the last unsaved interval (half of it)."""
    if checkpoint_interval_iterations < 1 or iteration_time <= 0:
        raise ValueError("need positive interval and iteration time")
    return 0.5 * checkpoint_interval_iterations * iteration_time

"""Fast checkpointing and recovery (§4.4).

**Two-stage save**: each GPU first dumps its state to pinned host memory
over PCIe (this is the only part that blocks training — "several
seconds"), then a background process drains host memory to the
distributed file system asynchronously.

**Optimized recovery**: GPU workers in the same data-parallel group share
the parameter partition, so a single reader per group pulls it from HDFS
and broadcasts to its peers, cutting the read load by the DP degree.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..collectives.primitives import tree_broadcast
from ..hardware.node import NodeSpec
from ..model.memory import (
    OPTIMIZER_BYTES_PER_PARAM,
    PARAM_BYTES,
    checkpoint_bytes_per_gpu,
    params_per_gpu,
)
from ..model.transformer import ModelSpec
from ..parallel.plan import ParallelPlan


@dataclass(frozen=True)
class HdfsModel:
    """Distributed-filesystem throughput model."""

    aggregate_read_bandwidth: float = 60e9  # bytes/s across the cluster
    aggregate_write_bandwidth: float = 40e9
    per_client_bandwidth: float = 1.5e9  # one worker's stream

    def __post_init__(self) -> None:
        if min(
            self.aggregate_read_bandwidth,
            self.aggregate_write_bandwidth,
            self.per_client_bandwidth,
        ) <= 0:
            raise ValueError("HDFS bandwidths must be positive")

    def read_time(self, total_bytes: float, n_clients: int) -> float:
        """Time for ``n_clients`` to collectively read ``total_bytes``."""
        if total_bytes < 0 or n_clients < 1:
            raise ValueError("invalid read request")
        rate = min(self.aggregate_read_bandwidth, n_clients * self.per_client_bandwidth)
        return total_bytes / rate

    def write_time(self, total_bytes: float, n_clients: int) -> float:
        if total_bytes < 0 or n_clients < 1:
            raise ValueError("invalid write request")
        rate = min(self.aggregate_write_bandwidth, n_clients * self.per_client_bandwidth)
        return total_bytes / rate


@dataclass(frozen=True)
class CheckpointCost:
    """Timing of one checkpoint under the two-stage scheme."""

    stage1_stall: float  # GPU -> host memory; blocks training
    stage2_async: float  # host memory -> HDFS; off the critical path

    @property
    def training_interruption(self) -> float:
        return self.stage1_stall


@dataclass
class CheckpointPlanner:
    """Prices saves and restores for one (model, plan) deployment."""

    model: ModelSpec
    plan: ParallelPlan
    node: NodeSpec = None  # type: ignore[assignment]
    hdfs: HdfsModel = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.node is None:
            self.node = NodeSpec()
        if self.hdfs is None:
            self.hdfs = HdfsModel()

    @property
    def bytes_per_gpu(self) -> float:
        return checkpoint_bytes_per_gpu(
            self.model, self.plan.tp, self.plan.pp, self.plan.dp, self.plan.zero_stage
        )

    @property
    def unique_bytes(self) -> float:
        """Checkpoint content with DP-duplicated parameters written once."""
        per_gpu_params = params_per_gpu(self.model, self.plan.tp, self.plan.pp)
        params = per_gpu_params * PARAM_BYTES * self.plan.tp * self.plan.pp
        optimizer = self.model.n_params * OPTIMIZER_BYTES_PER_PARAM
        return params + optimizer

    def save_cost(self, two_stage: bool = True) -> CheckpointCost:
        """Blocking stall + async drain of one checkpoint."""
        stage1 = self.bytes_per_gpu / self.node.gpu_spec.pcie_bandwidth
        writers = self.plan.world_size
        stage2 = self.hdfs.write_time(self.unique_bytes, writers)
        if two_stage:
            return CheckpointCost(stage1_stall=stage1, stage2_async=stage2)
        # Naive: training blocks until HDFS has everything.
        return CheckpointCost(stage1_stall=stage1 + stage2, stage2_async=0.0)

    def min_checkpoint_interval(self) -> float:
        """Shortest safe interval: the async drain must finish first."""
        return self.save_cost().stage2_async

    def recovery_time(self, optimized: bool = True) -> float:
        """Load the latest checkpoint into every GPU.

        Naive: every worker reads its partition directly (DP-duplicated
        parameter reads hammer HDFS).  Optimized: one reader per DP group
        + broadcast to peers.
        """
        if optimized:
            readers = self.plan.tp * self.plan.pp  # one per DP group
            read = self.hdfs.read_time(self.unique_bytes, readers)
            broadcast = tree_broadcast(
                self.bytes_per_gpu,
                self.plan.dp,
                self.node.nic_spec.line_rate,
                1e-5,
            )
            pcie = self.bytes_per_gpu / self.node.gpu_spec.pcie_bandwidth
            return read + broadcast + pcie
        total = self.bytes_per_gpu * self.plan.world_size
        read = self.hdfs.read_time(total, self.plan.world_size)
        pcie = self.bytes_per_gpu / self.node.gpu_spec.pcie_bandwidth
        return read + pcie


def lost_progress(checkpoint_interval_iterations: int, iteration_time: float) -> float:
    """Expected training time lost to the last unsaved interval (half of it)."""
    if checkpoint_interval_iterations < 1 or iteration_time <= 0:
        raise ValueError("need positive interval and iteration time")
    return 0.5 * checkpoint_interval_iterations * iteration_time

"""Optimal checkpoint-interval selection (§4.4 follow-through).

The paper increases checkpoint frequency to bound lost work but keeps
the on-path stall small via the two-stage scheme.  The classic
Young/Daly analysis makes the trade-off explicit: with per-checkpoint
cost ``C`` (the stall) and mean time between failures ``M``, the optimal
interval is approximately ``sqrt(2 C M)``; we also provide the exact
expected-overhead model so the optimum can be validated numerically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from .checkpoint import CheckpointPlanner
from .faults import FaultInjector


def young_daly_interval(checkpoint_cost: float, mtbf: float) -> float:
    """First-order optimal seconds between checkpoints: sqrt(2 C M)."""
    if checkpoint_cost <= 0 or mtbf <= 0:
        raise ValueError("checkpoint cost and MTBF must be positive")
    return math.sqrt(2.0 * checkpoint_cost * mtbf)


def expected_overhead_fraction(
    interval: float, checkpoint_cost: float, mtbf: float, recovery_cost: float = 0.0
) -> float:
    """Expected fraction of wall time lost to checkpoints + rollback.

    Per interval: the stall ``C``; on failure (probability interval/M for
    small intervals) half the interval plus the recovery cost is lost.
    """
    if interval <= 0:
        raise ValueError("interval must be positive")
    if checkpoint_cost < 0 or mtbf <= 0 or recovery_cost < 0:
        raise ValueError("invalid cost parameters")
    checkpoint_share = checkpoint_cost / interval
    failure_rate = 1.0 / mtbf
    rollback_share = failure_rate * (interval / 2.0 + recovery_cost)
    return checkpoint_share + rollback_share


@dataclass(frozen=True)
class IntervalPlan:
    """A chosen checkpoint cadence with its expected costs."""

    interval_seconds: float
    interval_iterations: int
    overhead_fraction: float
    checkpoint_cost: float
    mtbf: float


def plan_interval(
    planner: CheckpointPlanner,
    injector: FaultInjector,
    iteration_time: float,
    recovery_cost: Optional[float] = None,
) -> IntervalPlan:
    """Pick the checkpoint cadence for a deployment.

    Uses the two-stage stall as the per-checkpoint cost, the fault
    injector's aggregate rate for the MTBF, and clamps the interval to at
    least the async-drain time (a new checkpoint cannot start before the
    previous upload finished) and at least one iteration.
    """
    if iteration_time <= 0:
        raise ValueError("iteration_time must be positive")
    cost = planner.save_cost().training_interruption
    mtbf = 1.0 / injector.cluster_rate_per_second()
    recovery = (
        recovery_cost if recovery_cost is not None else planner.recovery_time(optimized=True)
    )
    interval = young_daly_interval(cost, mtbf)
    interval = max(interval, planner.min_checkpoint_interval(), iteration_time)
    iterations = max(1, round(interval / iteration_time))
    return IntervalPlan(
        interval_seconds=iterations * iteration_time,
        interval_iterations=iterations,
        overhead_fraction=expected_overhead_fraction(
            iterations * iteration_time, cost, mtbf, recovery
        ),
        checkpoint_cost=cost,
        mtbf=mtbf,
    )

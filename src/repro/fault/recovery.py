"""Recovery accounting (§4.1, §6.3).

Collects per-incident records and computes the paper's operational
metrics: detection+diagnosis time (< 10 min), catch-up time (< 15 min),
and the effective-training-time rate (> 90%).  Degraded-mode extensions
track elastic DP-shrink intervals (spare-pool exhaustion) and the extra
iterations lost to N−1 checkpoint fallbacks, so the effective rate
prices shrunken epochs and corrupt-checkpoint retries honestly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from .faults import FaultEvent


@dataclass(frozen=True)
class RecoveryRecord:
    """Timeline of one fault-to-resume incident."""

    fault: FaultEvent
    detected_at: float
    diagnosed_at: float
    resumed_at: float
    auto: bool  # handled without human intervention
    lost_iterations: int  # progress rolled back to the last checkpoint
    # Degraded-mode bookkeeping (all default to the happy path):
    fallback_load: bool = False  # had to load the N-1 checkpoint
    extra_lost_iterations: int = 0  # additional rollback from the fallback
    replanned_dp: Optional[int] = None  # elastic shrink chosen this incident
    nodes_lost: int = 1  # blast radius (correlated faults hit many)
    spares_consumed: int = 0

    def __post_init__(self) -> None:
        if not self.fault.time <= self.detected_at <= self.diagnosed_at <= self.resumed_at:
            raise ValueError("recovery timeline must be monotone")
        if self.lost_iterations < 0 or self.extra_lost_iterations < 0:
            raise ValueError("lost iterations must be non-negative")

    @property
    def detection_time(self) -> float:
        return self.detected_at - self.fault.time

    @property
    def diagnosis_time(self) -> float:
        return self.diagnosed_at - self.detected_at

    @property
    def downtime(self) -> float:
        return self.resumed_at - self.fault.time

    @property
    def total_lost_iterations(self) -> int:
        return self.lost_iterations + self.extra_lost_iterations


@dataclass
class DegradedInterval:
    """A stretch of the run trained at a shrunken data-parallel degree.

    While open (``end is None``) the interval extends to "now"; the run
    closes it when a further shrink happens or the run finishes.  The
    throughput factor is the fraction of healthy tokens-per-iteration the
    shrunken plan sustains (per-replica batch held constant, so the
    global batch — and the epoch — shrinks with DP).
    """

    start: float
    dp: int
    healthy_dp: int
    reason: str = ""
    end: Optional[float] = None

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError("interval start must be non-negative")
        if not 1 <= self.dp <= self.healthy_dp:
            raise ValueError("degraded dp must be in [1, healthy_dp]")
        if self.end is not None and self.end < self.start:
            raise ValueError("interval end precedes start")

    @property
    def throughput_factor(self) -> float:
        return self.dp / self.healthy_dp

    def duration(self, now: Optional[float] = None) -> float:
        stop = self.end if self.end is not None else now
        if stop is None:
            raise ValueError("open interval needs an explicit 'now'")
        return max(0.0, stop - self.start)


@dataclass
class RecoveryLog:
    """All incidents of one production run, plus degraded-mode intervals."""

    records: List[RecoveryRecord] = field(default_factory=list)
    degraded: List[DegradedInterval] = field(default_factory=list)

    def add(self, record: RecoveryRecord) -> None:
        self.records.append(record)

    def add_degraded(self, interval: DegradedInterval) -> None:
        """Open a new degraded interval, closing any still-open one."""
        self.close_degraded(interval.start)
        self.degraded.append(interval)

    def close_degraded(self, at: float) -> None:
        if self.degraded and self.degraded[-1].end is None:
            self.degraded[-1].end = max(self.degraded[-1].start, at)

    @property
    def restarts(self) -> int:
        return len(self.records)

    def auto_fraction(self) -> float:
        if not self.records:
            return 1.0
        return sum(1 for r in self.records if r.auto) / len(self.records)

    def mean_detect_and_diagnose(self) -> float:
        """Average detection + diagnosis time (paper: < 10 minutes)."""
        if not self.records:
            return 0.0
        return sum(r.detected_at - r.fault.time + r.diagnosis_time for r in self.records) / len(
            self.records
        )

    def mean_downtime(self) -> float:
        if not self.records:
            return 0.0
        return sum(r.downtime for r in self.records) / len(self.records)

    def total_downtime(self) -> float:
        return sum(r.downtime for r in self.records)

    # -- degraded-mode accounting ------------------------------------------

    def fallback_loads(self) -> int:
        return sum(1 for r in self.records if r.fallback_load)

    def total_lost_iterations(self) -> int:
        return sum(r.total_lost_iterations for r in self.records)

    def degraded_time(self, until: float) -> float:
        return sum(i.duration(until) for i in self.degraded)

    def capacity_fraction(self, until: float) -> float:
        """Mean throughput factor over ``[0, until]`` from shrink intervals.

        1.0 for a run that never shrank; between dp_min/dp and 1.0
        otherwise.  Downtime is *not* subtracted here — this isolates the
        elastic-shrink cost from the restart cost.
        """
        if until <= 0:
            raise ValueError("until must be positive")
        lost = sum((1.0 - i.throughput_factor) * i.duration(until) for i in self.degraded)
        return max(0.0, 1.0 - lost / until)

    def effective_training_rate(self, iteration_time: float, wall_time: float) -> float:
        """Accounting estimate of the effective rate over ``[0, wall_time]``.

        Wall time minus restart downtime, minus the capacity lost to
        shrunken-DP intervals, minus rolled-back iterations (including
        checkpoint-fallback extras) valued at the healthy rate — all as a
        fraction of wall time.  The measured rate from an actual run
        (weighted iterations × iteration time / wall) should track this.
        """
        if iteration_time <= 0 or wall_time <= 0:
            raise ValueError("iteration_time and wall_time must be positive")
        downtime = sum(min(r.resumed_at, wall_time) - min(r.fault.time, wall_time)
                       for r in self.records)
        shrink_loss = sum(
            (1.0 - i.throughput_factor) * i.duration(wall_time) for i in self.degraded
        )
        rollback = self.total_lost_iterations() * iteration_time
        return max(0.0, wall_time - downtime - shrink_loss - rollback) / wall_time


def effective_training_rate(
    completed_iterations: float, iteration_time: float, wall_time: float
) -> float:
    """iterations x iteration time / total wall time (paper definition).

    ``completed_iterations`` may be fractional: elastic runs weight each
    iteration by its shrunken-epoch token fraction.
    """
    if wall_time <= 0 or iteration_time <= 0 or completed_iterations < 0:
        raise ValueError("invalid effective-rate inputs")
    return completed_iterations * iteration_time / wall_time

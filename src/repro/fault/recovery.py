"""Recovery accounting (§4.1, §6.3).

Collects per-incident records and computes the paper's operational
metrics: detection+diagnosis time (< 10 min), catch-up time (< 15 min),
and the effective-training-time rate (> 90%).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from .faults import FaultEvent


@dataclass(frozen=True)
class RecoveryRecord:
    """Timeline of one fault-to-resume incident."""

    fault: FaultEvent
    detected_at: float
    diagnosed_at: float
    resumed_at: float
    auto: bool  # handled without human intervention
    lost_iterations: int  # progress rolled back to the last checkpoint

    def __post_init__(self) -> None:
        if not self.fault.time <= self.detected_at <= self.diagnosed_at <= self.resumed_at:
            raise ValueError("recovery timeline must be monotone")

    @property
    def detection_time(self) -> float:
        return self.detected_at - self.fault.time

    @property
    def diagnosis_time(self) -> float:
        return self.diagnosed_at - self.detected_at

    @property
    def downtime(self) -> float:
        return self.resumed_at - self.fault.time


@dataclass
class RecoveryLog:
    """All incidents of one production run."""

    records: List[RecoveryRecord] = field(default_factory=list)

    def add(self, record: RecoveryRecord) -> None:
        self.records.append(record)

    @property
    def restarts(self) -> int:
        return len(self.records)

    def auto_fraction(self) -> float:
        if not self.records:
            return 1.0
        return sum(1 for r in self.records if r.auto) / len(self.records)

    def mean_detect_and_diagnose(self) -> float:
        """Average detection + diagnosis time (paper: < 10 minutes)."""
        if not self.records:
            return 0.0
        return sum(r.detected_at - r.fault.time + r.diagnosis_time for r in self.records) / len(
            self.records
        )

    def mean_downtime(self) -> float:
        if not self.records:
            return 0.0
        return sum(r.downtime for r in self.records) / len(self.records)

    def total_downtime(self) -> float:
        return sum(r.downtime for r in self.records)


def effective_training_rate(
    completed_iterations: int, iteration_time: float, wall_time: float
) -> float:
    """iterations x iteration time / total wall time (paper definition)."""
    if wall_time <= 0 or iteration_time <= 0 or completed_iterations < 0:
        raise ValueError("invalid effective-rate inputs")
    return completed_iterations * iteration_time / wall_time

"""Predefined fault scenarios (§5, §6.3 war stories).

Each scenario wires a specific failure pattern into a small live cluster
with the robust-training driver, runs the detection machinery, and
reports what the framework concluded — executable versions of the
paper's troubleshooting anecdotes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from ..hardware.cluster import Cluster
from ..sim import Simulator
from .driver import RobustTrainingDriver
from .faults import CUDA_ERROR, NCCL_HANG, NIC_DEGRADED, SLOW_HOST, FaultKind
from .kubernetes import MockKubernetes


@dataclass
class ScenarioOutcome:
    """What happened when the scenario ran."""

    name: str
    injected: Dict[int, str]  # node_id -> fault name
    detected: Dict[int, str]  # node_id -> verdict value
    evicted: List[int]
    auto_recovered: bool
    notes: str = ""


@dataclass
class Scenario:
    """A named failure pattern to inject into a live driver."""

    name: str
    faults: List[FaultKind]  # one per victim executor, in order
    detect_by: float = 180.0  # sim seconds to allow for detection
    expect_auto: bool = True

    def run(self, n_nodes: int = 4, n_spares: int = 4) -> ScenarioOutcome:
        sim = Simulator()
        cluster = Cluster.build(n_nodes=n_nodes, n_spares=n_spares)
        driver = RobustTrainingDriver(
            sim=sim, cluster=cluster, kubernetes=MockKubernetes(cluster=cluster)
        )
        driver.start()
        sim.run(until=45.0)  # steady-state heartbeats first
        driver.drain_heartbeats()

        injected: Dict[int, str] = {}
        for index, fault in enumerate(self.faults):
            victim = driver.executors[index % len(driver.executors)]
            victim.inject(fault)
            injected[victim.node.node_id] = fault.name

        sim.run(until=45.0 + self.detect_by)
        anomalies = driver.check_anomalies()
        detected = {a.node_id: a.verdict.value for a in anomalies}
        auto = bool(anomalies) and all(
            a.triggers_auto_recovery for a in anomalies if a.node_id in injected
        )
        evicted = driver.recover() if anomalies else []
        return ScenarioOutcome(
            name=self.name,
            injected=injected,
            detected=detected,
            evicted=evicted,
            auto_recovered=auto,
        )


def crash_scenario() -> Scenario:
    """A training process dies with a CUDA error: caught by log keywords."""
    return Scenario(name="cuda-crash", faults=[CUDA_ERROR])


def hang_scenario() -> Scenario:
    """A GPU blocks in NCCL: heartbeats continue, traffic ceases."""
    return Scenario(name="nccl-hang", faults=[NCCL_HANG])


def gray_failure_scenario() -> Scenario:
    """A silently degraded NIC: no automatic verdict — needs the heat map.

    The driver's heartbeat rules see nothing (traffic only mildly down on
    one rail), reproducing why §5 needed deeper tooling.
    """
    return Scenario(name="gray-nic", faults=[NIC_DEGRADED], expect_auto=False)


def straggler_scenario() -> Scenario:
    """A 10%-slow host: invisible to heartbeats, visible to diagnostics."""
    return Scenario(name="slow-host", faults=[SLOW_HOST], expect_auto=False)


def multi_fault_scenario() -> Scenario:
    """Two simultaneous failures on different nodes."""
    return Scenario(name="double-fault", faults=[CUDA_ERROR, NCCL_HANG])


ALL_SCENARIOS: List[Callable[[], Scenario]] = [
    crash_scenario,
    hang_scenario,
    gray_failure_scenario,
    straggler_scenario,
    multi_fault_scenario,
]


def run_all(n_nodes: int = 4, n_spares: int = 6) -> List[ScenarioOutcome]:
    """Execute every scenario on a fresh cluster each."""
    return [factory().run(n_nodes=n_nodes, n_spares=n_spares) for factory in ALL_SCENARIOS]

"""Predefined fault scenarios (§5, §6.3 war stories).

Each scenario wires a specific failure pattern into a small live cluster
with the robust-training driver, runs the detection machinery, and
reports what the framework concluded — executable versions of the
paper's troubleshooting anecdotes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence

from ..hardware.cluster import Cluster
from ..sim import Simulator
from .driver import RobustTrainingDriver
from .faults import CUDA_ERROR, NCCL_HANG, NIC_DEGRADED, SLOW_HOST, FaultKind
from .kubernetes import MockKubernetes


@dataclass
class ScenarioOutcome:
    """What happened when the scenario ran."""

    name: str
    injected: Dict[int, str]  # node_id -> fault name
    detected: Dict[int, str]  # node_id -> verdict value
    evicted: List[int]
    auto_recovered: bool
    notes: str = ""
    shrunk: List[int] = field(default_factory=list)  # dropped, not replaced


@dataclass
class Scenario:
    """A named failure pattern to inject into a live driver."""

    name: str
    faults: List[FaultKind]  # one per victim executor, in order
    detect_by: float = 180.0  # sim seconds to allow for detection
    expect_auto: bool = True

    def run(self, n_nodes: int = 4, n_spares: int = 4) -> ScenarioOutcome:
        sim = Simulator()
        cluster = Cluster.build(n_nodes=n_nodes, n_spares=n_spares)
        driver = RobustTrainingDriver(
            sim=sim, cluster=cluster, kubernetes=MockKubernetes(cluster=cluster)
        )
        driver.start()
        sim.run(until=45.0)  # steady-state heartbeats first
        driver.drain_heartbeats()

        injected: Dict[int, str] = {}
        for index, fault in enumerate(self.faults):
            victim = driver.executors[index % len(driver.executors)]
            victim.inject(fault)
            injected[victim.node.node_id] = fault.name

        sim.run(until=45.0 + self.detect_by)
        anomalies = driver.check_anomalies()
        detected = {a.node_id: a.verdict.value for a in anomalies}
        auto = bool(anomalies) and all(
            a.triggers_auto_recovery for a in anomalies if a.node_id in injected
        )
        evicted = driver.recover() if anomalies else []
        return ScenarioOutcome(
            name=self.name,
            injected=injected,
            detected=detected,
            evicted=evicted,
            auto_recovered=auto,
            shrunk=list(driver.shrunk),
        )


def crash_scenario() -> Scenario:
    """A training process dies with a CUDA error: caught by log keywords."""
    return Scenario(name="cuda-crash", faults=[CUDA_ERROR])


def hang_scenario() -> Scenario:
    """A GPU blocks in NCCL: heartbeats continue, traffic ceases."""
    return Scenario(name="nccl-hang", faults=[NCCL_HANG])


def gray_failure_scenario() -> Scenario:
    """A silently degraded NIC: no automatic verdict — needs the heat map.

    The driver's heartbeat rules see nothing (traffic only mildly down on
    one rail), reproducing why §5 needed deeper tooling.
    """
    return Scenario(name="gray-nic", faults=[NIC_DEGRADED], expect_auto=False)


def straggler_scenario() -> Scenario:
    """A 10%-slow host: invisible to heartbeats, visible to diagnostics."""
    return Scenario(name="slow-host", faults=[SLOW_HOST], expect_auto=False)


def multi_fault_scenario() -> Scenario:
    """Two simultaneous failures on different nodes."""
    return Scenario(name="double-fault", faults=[CUDA_ERROR, NCCL_HANG])


ALL_SCENARIOS: List[Callable[[], Scenario]] = [
    crash_scenario,
    hang_scenario,
    gray_failure_scenario,
    straggler_scenario,
    multi_fault_scenario,
]


def run_all(n_nodes: int = 4, n_spares: int = 6) -> List[ScenarioOutcome]:
    """Execute every scenario on a fresh cluster each."""
    return [factory().run(n_nodes=n_nodes, n_spares=n_spares) for factory in ALL_SCENARIOS]


# -- correlated fault domains (degraded-mode war stories) -----------------------


def rack_power_scenario() -> Scenario:
    """A PSU trips and a whole rack of executors crashes at once."""
    return Scenario(name="rack-psu", faults=[CUDA_ERROR, CUDA_ERROR])


def tor_switch_scenario() -> Scenario:
    """A ToR switch dies: every server it fronts hangs in NCCL together."""
    return Scenario(name="tor-switch", faults=[NCCL_HANG, NCCL_HANG])


def spare_exhaustion_scenario() -> Scenario:
    """A correlated crash wider than the spare pool: the job must shrink."""
    return Scenario(name="spare-exhaustion", faults=[CUDA_ERROR, CUDA_ERROR, CUDA_ERROR])


CORRELATED_SCENARIOS: List[Callable[[], Scenario]] = [
    rack_power_scenario,
    tor_switch_scenario,
    spare_exhaustion_scenario,
]


def run_correlated(n_nodes: int = 4, n_spares: int = 1) -> List[ScenarioOutcome]:
    """Execute the correlated-domain scenarios against a thin spare pool.

    With fewer spares than the blast radius, each run exercises the
    degraded-mode path: faulty nodes past the pool are shed (``shrunk``)
    rather than replaced, and the driver keeps running.
    """
    return [
        factory().run(n_nodes=n_nodes, n_spares=n_spares) for factory in CORRELATED_SCENARIOS
    ]


def chaos_smoke(seeds: Sequence[int] = (0, 1, 2), weeks: float = 1.0) -> List[dict]:
    """CI chaos job: live scenarios + correlated production runs per seed.

    For each seed: run every live scenario (independent and correlated),
    then a production run under a :class:`CorrelatedFaultInjector` with a
    zero-spare cluster and a flaky HDFS — the full degraded-mode
    pipeline.  ``RecoveryRecord`` validation raises on any non-monotone
    recovery timeline; this function additionally re-checks each log and
    verifies the run is deterministic under its seed.  Raises
    ``AssertionError``/``ValueError`` on any violation, so a plain
    invocation doubles as a pass/fail gate.
    """
    import numpy as np

    from ..hardware.cluster import Cluster as _Cluster
    from ..model import GPT_175B
    from ..parallel.plan import plan_for_gpus
    from .checkpoint import FLAKY_HDFS, CheckpointPlanner
    from .domains import CorrelatedFaultInjector, DomainTopology
    from .driver import ProductionRun

    summaries: List[dict] = []
    for seed in seeds:
        live = run_all() + run_correlated()

        def build() -> ProductionRun:
            n_nodes = 128
            plan = plan_for_gpus(n_nodes * 8, tp=8, pp=8, vpp=2)
            injector = CorrelatedFaultInjector(
                n_nodes=n_nodes,
                topology=DomainTopology(n_nodes=n_nodes, nodes_per_rack=4, nodes_per_pod=16),
                rng=np.random.default_rng(seed),
                rate_multiplier=20.0,  # compress weeks of faults into the horizon
            )
            return ProductionRun(
                plan,
                injector,
                planner=CheckpointPlanner(model=GPT_175B, plan=plan),
                rng=np.random.default_rng(seed),
                cluster=_Cluster.build(n_nodes=n_nodes, n_spares=0),
                integrity=FLAKY_HDFS,
            )

        result = build().run(duration=weeks * 7 * 86400.0)
        again = build().run(duration=weeks * 7 * 86400.0)
        for record in result.log.records:
            if not (
                record.fault.time
                <= record.detected_at
                <= record.diagnosed_at
                <= record.resumed_at
            ):
                raise ValueError(f"non-monotone recovery timeline: {record}")
        timeline = [
            (r.fault.time, r.detected_at, r.diagnosed_at, r.resumed_at)
            for r in result.log.records
        ]
        timeline_again = [
            (r.fault.time, r.detected_at, r.diagnosed_at, r.resumed_at)
            for r in again.log.records
        ]
        assert timeline == timeline_again, f"seed {seed}: run is not deterministic"
        assert result.wall_time > 0 and result.completed_iterations >= 0
        summaries.append(
            {
                "seed": seed,
                "scenarios": len(live),
                "restarts": result.restarts,
                "fallback_loads": result.log.fallback_loads(),
                "degraded_intervals": len(result.log.degraded),
                "final_dp": result.final_dp,
                "effective_rate": result.effective_rate(6.34),
            }
        )
    return summaries

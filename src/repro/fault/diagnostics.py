"""Self-check diagnostic tests (§4.3).

Lightweight-but-comprehensive suite the driver runs on every node after
suspending a job.  Each test inspects the hardware it exercises and takes
a realistic amount of wall time; the whole suite stays within the paper's
"< 10 minutes to detect and diagnose" envelope.

* **Loopback** — full-mesh RNIC -> {memory, GPU} bandwidth on one host:
  catches PCIe misconfiguration and per-link degradation.
* **RNIC-to-RNIC** — pairwise NIC bandwidth/connectivity on one host:
  catches broken NICs and routing configuration.
* **NCCL all-to-all (intra-host)** — GPU communication inside the node:
  catches broken GPUs and NVLink errors.
* **NCCL all-reduce (ToR neighbours)** — once intra-host passes, an
  all-reduce with same-ToR neighbours checks inter-node paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..hardware.node import Node


@dataclass(frozen=True)
class DiagnosticResult:
    test: str
    node_id: int
    passed: bool
    duration: float
    detail: str = ""


@dataclass
class DiagnosticTest:
    """Base: a named check with a fixed execution cost."""

    name: str = "base"
    duration: float = 10.0

    def inspect(self, node: Node) -> Optional[str]:  # pragma: no cover - abstract
        raise NotImplementedError

    def run(self, node: Node) -> DiagnosticResult:
        detail = self.inspect(node)
        return DiagnosticResult(
            test=self.name,
            node_id=node.node_id,
            passed=detail is None,
            duration=self.duration,
            detail=detail or "",
        )


@dataclass
class LoopbackTest(DiagnosticTest):
    """Full-mesh RNIC loopback bandwidth to memory and GPU endpoints."""

    name: str = "loopback"
    duration: float = 45.0
    bandwidth_floor: float = 0.85  # fraction of spec below which we flag

    def inspect(self, node: Node) -> Optional[str]:
        for nic in node.nics:
            if not nic.healthy:
                return f"nic{nic.index} unreachable in loopback"
            if nic.bandwidth_factor < self.bandwidth_floor:
                return (
                    f"nic{nic.index} loopback at {nic.bandwidth_factor:.0%} of spec "
                    "(PCIe or cable degradation)"
                )
        return None


@dataclass
class RnicToRnicTest(DiagnosticTest):
    """Pairwise connectivity and bandwidth between a host's RNICs."""

    name: str = "rnic-to-rnic"
    duration: float = 35.0

    def inspect(self, node: Node) -> Optional[str]:
        dead = [n.index for n in node.nics if not n.healthy]
        if dead:
            return f"rnic pairs involving {dead} failed connectivity"
        return None


@dataclass
class NcclAllToAllTest(DiagnosticTest):
    """Intra-host all-to-all among the node's GPUs."""

    name: str = "nccl-all-to-all"
    duration: float = 60.0
    speed_floor: float = 0.95

    def inspect(self, node: Node) -> Optional[str]:
        for gpu in node.gpus:
            if not gpu.healthy:
                return f"gpu{gpu.index} failed all-to-all (NCCL error)"
        if not node.healthy:
            return "node hung during all-to-all"
        if node.speed_factor < self.speed_floor:
            return f"all-to-all bandwidth {node.speed_factor:.0%} of expectation"
        return None


@dataclass
class NcclAllReduceTest(DiagnosticTest):
    """All-reduce with same-ToR neighbours (inter-node GPU paths)."""

    name: str = "nccl-all-reduce-tor"
    duration: float = 75.0

    def inspect(self, node: Node) -> Optional[str]:
        weak = [n.index for n in node.nics if n.healthy and n.bandwidth_factor < 0.9]
        if weak:
            return f"inter-node all-reduce below benchmark via nics {weak}"
        if not node.healthy:
            return "node unresponsive in inter-node all-reduce"
        return None


@dataclass
class DiagnosticSuite:
    """The full §4.3 battery, run in order with early exit on failure."""

    tests: List[DiagnosticTest] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.tests:
            self.tests = [
                LoopbackTest(),
                RnicToRnicTest(),
                NcclAllToAllTest(),
                NcclAllReduceTest(),
            ]

    @property
    def max_duration(self) -> float:
        return sum(t.duration for t in self.tests)

    def run_on(self, node: Node) -> List[DiagnosticResult]:
        """Run the battery; stops at the first failure (the culprit)."""
        results = []
        for test in self.tests:
            result = test.run(node)
            results.append(result)
            if not result.passed:
                break
        return results

    def node_passes(self, node: Node) -> bool:
        return all(r.passed for r in self.run_on(node))

    def find_faulty(self, nodes: List[Node]) -> List[Node]:
        """All-node sweep: the nodes failing any test."""
        return [n for n in nodes if not self.node_passes(n)]

    def sweep_duration(self) -> float:
        """Wall time of a cluster sweep (nodes test themselves in parallel)."""
        return self.max_duration

"""Mock Kubernetes scheduler (§4.1).

The driver interfaces with a custom Kubernetes to allocate Pods, block
faulty nodes, and replenish the cluster with healthy spares that have
passed the diagnostic battery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from ..hardware.cluster import Cluster
from ..hardware.node import Node
from .diagnostics import DiagnosticSuite


@dataclass
class Pod:
    name: str
    node_id: int
    running: bool = True


@dataclass
class MockKubernetes:
    """Pod lifecycle + node blocking over a :class:`Cluster`."""

    cluster: Cluster
    allocation_delay: float = 40.0  # schedule + image pull + daemon start
    diagnostics: DiagnosticSuite = field(default_factory=DiagnosticSuite)
    blocked_ips: Set[str] = field(default_factory=set)
    pods: Dict[int, Pod] = field(default_factory=dict)
    _pod_counter: int = 0

    def allocate_pods(self) -> List[Pod]:
        """One executor Pod per active node."""
        for node in self.cluster.nodes:
            if node.node_id not in self.pods:
                self._pod_counter += 1
                self.pods[node.node_id] = Pod(
                    name=f"trainer-{self._pod_counter}", node_id=node.node_id
                )
        return list(self.pods.values())

    def block_and_replace(self, node_id: int) -> Node:
        """Evict a faulty node and bring in a diagnosed-healthy spare.

        The spare must pass the diagnostic suite before joining (the
        paper replenishes only with "healthy ones which pass our
        diagnostic tests").
        """
        node = self.cluster.node(node_id)
        self.blocked_ips.add(node.ip)
        pod = self.pods.pop(node_id, None)
        if pod is not None:
            pod.running = False
        while True:
            replacement = self.cluster.evict(node_id)
            if self.diagnostics.node_passes(replacement):
                break
            # A bad spare: block it too and try the next one.
            self.blocked_ips.add(replacement.ip)
            node_id = replacement.node_id
        self._pod_counter += 1
        self.pods[replacement.node_id] = Pod(
            name=f"trainer-{self._pod_counter}", node_id=replacement.node_id
        )
        return replacement

    def block_and_drop(self, node_id: int) -> Node:
        """Evict a faulty node with no replacement (spare pool exhausted).

        The node's IP is blocked like any eviction, its Pod is stopped,
        and the cluster shrinks — the degraded-mode path the elastic
        driver takes instead of stalling on an empty spare pool.
        """
        node = self.cluster.node(node_id)
        self.blocked_ips.add(node.ip)
        pod = self.pods.pop(node_id, None)
        if pod is not None:
            pod.running = False
        return self.cluster.remove(node_id)

    @property
    def has_spare(self) -> bool:
        return self.cluster.spare_count > 0

    def replacement_time(self) -> float:
        """Wall time to evict + schedule + start the replacement Pod."""
        return self.allocation_delay

    def is_blocked(self, ip: str) -> bool:
        return ip in self.blocked_ips

"""The robust-training driver (§4.1, Figure 5) and production runs.

Two layers:

* :class:`RobustTrainingDriver` — the event-driven state machine over
  live executors, heartbeat channels, the anomaly detector, diagnostics
  and mock Kubernetes.  Exercised at small scale in tests (it runs real
  heartbeats through real channels).
* :class:`ProductionRun` — the multi-week, 10k-GPU timeline used for
  Figure 11: fault arrivals drive suspend/diagnose/evict/resume cycles
  with latencies priced by the same subsystems (detector windows,
  diagnostic suite duration, ordered group init, two-stage checkpoint
  recovery), plus a loss curve over the tokens actually trained.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..collectives.init import group_init_time
from ..collectives.kvstore import REDIS_STORE
from ..hardware.cluster import Cluster
from ..parallel.plan import ParallelPlan
from ..sim import Channel, Simulator
from .checkpoint import CheckpointPlanner, lost_progress
from .detector import AnomalyDetector
from .diagnostics import DiagnosticSuite
from .executor import Executor
from .faults import FaultEvent, FaultInjector, Manifestation
from .heartbeat import HeartbeatHistory
from .kubernetes import MockKubernetes
from .recovery import RecoveryLog, RecoveryRecord, effective_training_rate


# -- live, event-driven driver (small scale) ---------------------------------


@dataclass
class RobustTrainingDriver:
    """Drives executors through detect -> diagnose -> evict -> resume."""

    sim: Simulator
    cluster: Cluster
    kubernetes: MockKubernetes
    detector: AnomalyDetector = field(default_factory=AnomalyDetector)
    diagnostics: DiagnosticSuite = field(default_factory=DiagnosticSuite)
    heartbeat_interval: float = 10.0
    channel: Channel = None  # type: ignore[assignment]
    executors: List[Executor] = field(default_factory=list)
    histories: dict = field(default_factory=dict)
    state: str = "initializing"
    recoveries: int = 0

    def __post_init__(self) -> None:
        if self.channel is None:
            self.channel = Channel(self.sim, latency=0.05, name="heartbeats")

    def start(self) -> None:
        self.kubernetes.allocate_pods()
        for node in self.cluster.nodes:
            executor = Executor(
                sim=self.sim,
                node=node,
                channel=self.channel,
                heartbeat_interval=self.heartbeat_interval,
            )
            executor.start()
            self.executors.append(executor)
            self.histories[node.node_id] = HeartbeatHistory(node_id=node.node_id)
        self.state = "running"

    def drain_heartbeats(self) -> int:
        """Ingest every delivered heartbeat; returns how many."""
        count = 0
        while True:
            beat = self.channel.try_recv()
            if beat is None:
                return count
            history = self.histories.get(beat.node_id)
            if history is not None:
                history.record(beat)
            count += 1

    def check_anomalies(self) -> List:
        """Run the §4.2 rules over current histories."""
        self.drain_heartbeats()
        return self.detector.sweep(list(self.histories.values()), self.sim.now)

    def recover(self) -> List[int]:
        """Suspend, diagnose, evict faulty nodes, resume.  Returns evictions."""
        self.state = "suspended"
        faulty = self.diagnostics.find_faulty(self.cluster.nodes)
        evicted = []
        for node in faulty:
            executor = next(e for e in self.executors if e.node is node)
            executor.stop()
            replacement = self.kubernetes.block_and_replace(node.node_id)
            del self.histories[node.node_id]
            new_exec = Executor(
                sim=self.sim,
                node=replacement,
                channel=self.channel,
                heartbeat_interval=self.heartbeat_interval,
            )
            new_exec.start()
            self.executors[self.executors.index(executor)] = new_exec
            self.histories[replacement.node_id] = HeartbeatHistory(node_id=replacement.node_id)
            evicted.append(node.node_id)
        self.recoveries += 1
        self.state = "running"
        return evicted


# -- multi-week production timeline (Figure 11) --------------------------------


def default_loss_curve(tokens: float) -> float:
    """Chinchilla-style surrogate for the Figure 11 loss trajectory.

    The paper's loss values are proprietary (the figure is normalized);
    any smooth power-law decay reproduces its qualitative content.
    """
    return 1.7 + 14.0 * (tokens / 1e9 + 30.0) ** -0.42


@dataclass(frozen=True)
class ProductionRunConfig:
    """Operational parameters of a long training run."""

    iteration_time: float = 6.34  # Table 2, MegaScale @ 12,288 GPUs
    tokens_per_iteration: float = 6144 * 2048
    checkpoint_interval_iterations: int = 150
    heartbeat_interval: float = 10.0
    heartbeat_timeout: float = 30.0
    nccl_hang_timeout: float = 120.0  # traffic-ceased detection window
    manual_intervention_time: float = 2400.0  # the ~10% needing humans
    silent_fault_detection_time: float = 6 * 3600.0  # heat-map review cadence
    kubernetes_replacement_time: float = 40.0
    checkpoint_load_optimized: bool = True


@dataclass
class ProductionRunResult:
    """Everything Figure 11 and §6.3 report about one run."""

    wall_time: float
    completed_iterations: int
    restarts: int
    log: RecoveryLog
    loss_points: List[Tuple[float, float, int]] = field(default_factory=list)
    # (wall time, loss, restart index at that moment)

    @property
    def tokens_trained(self) -> float:
        return self.loss_points[-1][0] if self.loss_points else 0.0

    def effective_rate(self, iteration_time: float) -> float:
        return effective_training_rate(
            self.completed_iterations, iteration_time, self.wall_time
        )


class ProductionRun:
    """Simulates a fault-ridden multi-week run at 10k+ GPU scale."""

    def __init__(
        self,
        plan: ParallelPlan,
        injector: FaultInjector,
        config: Optional[ProductionRunConfig] = None,
        planner: Optional[CheckpointPlanner] = None,
        loss_curve: Callable[[float], float] = default_loss_curve,
        diagnostics: Optional[DiagnosticSuite] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.plan = plan
        self.injector = injector
        self.config = config or ProductionRunConfig()
        self.planner = planner
        self.loss_curve = loss_curve
        self.diagnostics = diagnostics or DiagnosticSuite()
        self.rng = rng if rng is not None else np.random.default_rng(42)

    # -- per-incident latencies ------------------------------------------------

    def detection_time(self, event: FaultEvent) -> float:
        cfg = self.config
        if event.kind.manifestation is Manifestation.EXPLICIT:
            # Caught by the next heartbeat's status/log keywords.
            return float(self.rng.uniform(0, cfg.heartbeat_interval)) + 2.0
        if event.kind.manifestation is Manifestation.HANG:
            # RDMA traffic ceased; needs a few silent windows to be sure.
            return cfg.nccl_hang_timeout + float(self.rng.uniform(0, cfg.heartbeat_interval))
        # Silent: surfaces at the next heat-map review (§5.1).
        return float(self.rng.uniform(0.2, 1.0)) * cfg.silent_fault_detection_time

    def recovery_downtime(self, event: FaultEvent) -> Tuple[float, bool, int]:
        """(downtime after detection, auto?, lost iterations)."""
        cfg = self.config
        diagnose = self.diagnostics.sweep_duration()
        auto = event.kind.auto_detectable
        manual = 0.0 if auto else cfg.manual_intervention_time
        replace = cfg.kubernetes_replacement_time
        init = group_init_time(self.plan, REDIS_STORE, ordered=True).total
        load = (
            self.planner.recovery_time(cfg.checkpoint_load_optimized)
            if self.planner is not None
            else 120.0
        )
        lost = int(self.rng.integers(0, cfg.checkpoint_interval_iterations))
        downtime = diagnose + manual + replace + init + load
        return downtime, auto, lost

    # -- the run -------------------------------------------------------------------

    def run(self, duration: float) -> ProductionRunResult:
        """Simulate ``duration`` wall seconds of production training."""
        if duration <= 0:
            raise ValueError("duration must be positive")
        cfg = self.config
        events = self.injector.sample(duration)
        log = RecoveryLog()
        loss_points: List[Tuple[float, float, int]] = []

        wall = 0.0
        iterations = 0
        restarts = 0

        def record_loss() -> None:
            tokens = iterations * cfg.tokens_per_iteration
            loss_points.append((tokens, self.loss_curve(tokens), restarts))

        record_loss()
        for event in events:
            if event.time <= wall:
                continue  # fault landed during a recovery window
            # Train until the fault.
            productive = event.time - wall
            iterations += int(productive / cfg.iteration_time)
            wall = event.time
            record_loss()
            # Detect, diagnose, recover.
            detect = self.detection_time(event)
            downtime, auto, lost = self.recovery_downtime(event)
            detected_at = wall + detect
            diagnosed_at = detected_at + self.diagnostics.sweep_duration()
            resumed_at = detected_at + downtime
            log.add(
                RecoveryRecord(
                    fault=event,
                    detected_at=detected_at,
                    diagnosed_at=diagnosed_at,
                    resumed_at=resumed_at,
                    auto=auto,
                    lost_iterations=lost,
                )
            )
            iterations = max(0, iterations - lost)
            wall = resumed_at
            restarts += 1
            record_loss()
            if wall >= duration:
                break
        if wall < duration:
            iterations += int((duration - wall) / cfg.iteration_time)
            wall = duration
            record_loss()
        return ProductionRunResult(
            wall_time=wall,
            completed_iterations=iterations,
            restarts=restarts,
            log=log,
            loss_points=loss_points,
        )


def catch_up_time(config: ProductionRunConfig) -> float:
    """Expected time to regain pre-crash progress after resuming (§6.3).

    Lost progress averages half a checkpoint interval; "catching up"
    means re-running those iterations.
    """
    return lost_progress(config.checkpoint_interval_iterations, config.iteration_time)

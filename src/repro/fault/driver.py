"""The robust-training driver (§4.1, Figure 5) and production runs.

Two layers:

* :class:`RobustTrainingDriver` — the event-driven state machine over
  live executors, heartbeat channels, the anomaly detector, diagnostics
  and mock Kubernetes.  Exercised at small scale in tests (it runs real
  heartbeats through real channels).
* :class:`ProductionRun` — the multi-week, 10k-GPU timeline used for
  Figure 11: fault arrivals drive suspend/diagnose/evict/resume cycles
  with latencies priced by the same subsystems (detector windows,
  diagnostic suite duration, ordered group init, two-stage checkpoint
  recovery), plus a loss curve over the tokens actually trained.

Degraded-mode recovery: both layers survive the unhappy paths — when
the spare pool is exhausted they shrink the data-parallel degree via
:mod:`repro.fault.elastic` instead of stalling; correlated domain
faults (:mod:`repro.fault.domains`) take out whole racks or pods in one
event; and checkpoint loads go through the integrity + retry layer of
:mod:`repro.fault.checkpoint`, falling back to the N−1 checkpoint when
shards stay corrupt.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..collectives.init import group_init_time
from ..collectives.kvstore import REDIS_STORE
from ..hardware.cluster import Cluster, NoSpareAvailable
from ..network.flapping import FlapEvent
from ..observability.monitors import MillisecondMonitor, SecondLevelMonitor
from ..parallel.plan import ParallelPlan
from ..sim import Channel, Simulator
from .checkpoint import (
    CheckpointLoadOutcome,
    CheckpointPlanner,
    RetryPolicy,
    ShardIntegrityModel,
    lost_progress,
)
from .detector import AnomalyDetector
from .diagnostics import DiagnosticSuite
from .elastic import ElasticDecision, ElasticReplanner
from .executor import Executor
from .faults import FaultEvent, FaultInjector, Manifestation
from .heartbeat import HeartbeatHistory
from .kubernetes import MockKubernetes
from .recovery import DegradedInterval, RecoveryLog, RecoveryRecord, effective_training_rate


# -- live, event-driven driver (small scale) ---------------------------------


@dataclass
class RobustTrainingDriver:
    """Drives executors through detect -> diagnose -> evict -> resume.

    When the spare pool is exhausted the driver no longer raises: it
    drops the faulty node, shrinks the active set, and records the loss
    in ``shrunk`` — the live-cluster analogue of the production run's
    elastic re-plan.
    """

    sim: Simulator
    cluster: Cluster
    kubernetes: MockKubernetes
    detector: AnomalyDetector = field(default_factory=AnomalyDetector)
    diagnostics: DiagnosticSuite = field(default_factory=DiagnosticSuite)
    heartbeat_interval: float = 10.0
    channel: Channel = None  # type: ignore[assignment]
    executors: List[Executor] = field(default_factory=list)
    histories: dict = field(default_factory=dict)
    state: str = "initializing"
    recoveries: int = 0
    shrunk: List[int] = field(default_factory=list)  # dropped without replacement
    hub: Optional[object] = None  # optional TelemetryHub ("fault" lane)
    # node_id -> Executor index, maintained through replacement/shedding so
    # recovery resolves faulty nodes in O(1) instead of scanning the fleet
    # once per faulty node (O(faulty x executors) on correlated blasts).
    _executor_by_node: dict = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.channel is None:
            self.channel = Channel(self.sim, latency=0.05, name="heartbeats")

    def start(self) -> None:
        self.kubernetes.allocate_pods()
        for node in self.cluster.nodes:
            executor = Executor(
                sim=self.sim,
                node=node,
                channel=self.channel,
                heartbeat_interval=self.heartbeat_interval,
            )
            executor.start()
            self._executor_by_node[node.node_id] = len(self.executors)
            self.executors.append(executor)
            self.histories[node.node_id] = HeartbeatHistory(node_id=node.node_id)
        self.state = "running"

    def drain_heartbeats(self) -> int:
        """Ingest every delivered heartbeat; returns how many."""
        count = 0
        while True:
            beat = self.channel.try_recv()
            if beat is None:
                return count
            history = self.histories.get(beat.node_id)
            if history is not None:
                history.record(beat)
            count += 1

    def check_anomalies(self) -> List:
        """Run the §4.2 rules over current histories."""
        self.drain_heartbeats()
        return self.detector.sweep(list(self.histories.values()), self.sim.now)

    def recover(self) -> List[int]:
        """Suspend, diagnose, evict faulty nodes, resume.  Returns evictions.

        Faulty nodes are replaced from the spare pool while it lasts;
        past that, they are dropped and the job continues degraded.
        """
        self.state = "suspended"
        suspended_at = self.sim.now
        faulty = self.diagnostics.find_faulty(self.cluster.nodes)
        evicted = []
        for node in faulty:
            slot = self._executor_by_node[node.node_id]
            executor = self.executors[slot]
            executor.stop()
            try:
                replacement = self.kubernetes.block_and_replace(node.node_id)
            except NoSpareAvailable:
                # Spare pool exhausted: degraded mode — shed the node.
                # (UnknownNode would mean a stale reference — a bug — and
                # deliberately propagates instead of being absorbed here.)
                self.kubernetes.block_and_drop(node.node_id)
                del self.histories[node.node_id]
                del self._executor_by_node[node.node_id]
                self.executors.pop(slot)
                for node_id, index in self._executor_by_node.items():
                    if index > slot:
                        self._executor_by_node[node_id] = index - 1
                self.shrunk.append(node.node_id)
                evicted.append(node.node_id)
                continue
            del self.histories[node.node_id]
            del self._executor_by_node[node.node_id]
            new_exec = Executor(
                sim=self.sim,
                node=replacement,
                channel=self.channel,
                heartbeat_interval=self.heartbeat_interval,
            )
            new_exec.start()
            self.executors[slot] = new_exec
            self._executor_by_node[replacement.node_id] = slot
            self.histories[replacement.node_id] = HeartbeatHistory(node_id=replacement.node_id)
            evicted.append(node.node_id)
        self.recoveries += 1
        self.state = "running" if self.executors else "stalled"
        if self.hub is not None:
            self.hub.instant(
                "fault",
                "recover",
                suspended_at,
                evicted=len(evicted),
                shrunk=len(self.shrunk),
                state=self.state,
            )
            for node_id in evicted:
                self.hub.instant("fault", "evict", suspended_at, rank=node_id)
            self.hub.count("fault", "recoveries", 1)
        return evicted


class LiveMonitors:
    """§4.2's two monitoring tiers attached to a production timeline.

    The :class:`~repro.observability.MillisecondMonitor` watches the
    effective transfer rate (full line rate while healthy, the degraded
    fraction while a silent fault limps along, zero while traffic has
    ceased during recovery); the
    :class:`~repro.observability.SecondLevelMonitor` watches the flap
    history synthesized from NIC/link incidents.  Every verdict is
    emitted as an instant on the ``monitor`` lane at the simulated time
    it fired, so ``HealthFinding``s appear live on the unified trace.
    """

    def __init__(self, hub, link_rate: float = 25e9) -> None:
        self.hub = hub
        self.link_rate = link_rate
        self.millisecond = MillisecondMonitor(link_rate=link_rate)
        self.second = SecondLevelMonitor()
        self.flaps: List[FlapEvent] = []
        self.findings = []  # (time, HealthFinding) in emission order

    def _emit(self, finding, at: float) -> None:
        self.findings.append((at, finding))
        self.hub.instant(
            "monitor",
            f"{finding.subsystem}:{finding.severity}",
            at,
            severity=finding.severity,
            source=finding.subsystem,
            message=finding.message,
        )
        self.hub.count("monitor", "findings", 1, severity=finding.severity)

    def observe_incident(self, event: FaultEvent, detected_at: float, resumed_at: float) -> None:
        """Feed both tiers from one fault incident and emit their verdicts."""
        ms = self.millisecond
        ms.record(event.time, self.link_rate)  # healthy right up to the fault
        if event.kind.manifestation is Manifestation.SILENT:
            # Limping along: the slowest participant gates the job.
            ms.record(detected_at, event.kind.degraded_throughput * self.link_rate)
        else:
            ms.record(detected_at, 0.0)  # traffic ceased (crash or hang)
        self._emit(ms.verdict(), detected_at)
        if "nic" in event.kind.name or event.domain is not None:
            # Network-shaped incidents read as link flaps to the coarse tier.
            self.flaps.append(FlapEvent(down_at=event.time, up_at=resumed_at))
            self._emit(self.second.check_flapping(self.flaps, now=detected_at), detected_at)
        ms.record(resumed_at, self.link_rate)  # recovered to line rate


# -- multi-week production timeline (Figure 11) --------------------------------


def emit_incident_telemetry(
    hub,
    event: FaultEvent,
    detected_at: float,
    resumed_at: float,
    auto: bool = True,
    lost_iterations: int = 0,
    spares_consumed: int = 0,
    fell_back: bool = False,
    monitors=None,
) -> None:
    """One fault's full telemetry footprint on the ``fault`` lane.

    Emits the fault instant (with blast radius and failure domain — the
    attrs the diagnosis correlator keys on), the detect and recover
    spans, and the incident counters.  Shared by :class:`ProductionRun`
    and the injected-cause diagnosis scenarios so both produce the same
    schema.
    """
    hub.instant(
        "fault",
        event.kind.name,
        event.time,
        rank=event.node_index,
        manifestation=event.kind.manifestation.value,
        blast_radius=event.blast_radius,
        domain=event.domain or f"node{event.node_index}",
    )
    hub.span(
        "fault", "detect", event.node_index, event.time, detected_at,
        stream="detect", kind=event.kind.name,
    )
    hub.span(
        "fault", "recover", event.node_index, detected_at, resumed_at,
        stream="recover", kind=event.kind.name, auto=auto,
        lost_iterations=lost_iterations,
        spares_consumed=spares_consumed,
        fell_back=fell_back,
    )
    hub.count("fault", "incidents", 1, kind=event.kind.name)
    hub.observe("fault", "downtime", resumed_at - detected_at)
    hub.observe("fault", "detection_time", detected_at - event.time)
    if monitors is not None:
        monitors.observe_incident(event, detected_at, resumed_at)


def default_loss_curve(tokens: float) -> float:
    """Chinchilla-style surrogate for the Figure 11 loss trajectory.

    The paper's loss values are proprietary (the figure is normalized);
    any smooth power-law decay reproduces its qualitative content.
    """
    return 1.7 + 14.0 * (tokens / 1e9 + 30.0) ** -0.42


@dataclass(frozen=True)
class ProductionRunConfig:
    """Operational parameters of a long training run."""

    iteration_time: float = 6.34  # Table 2, MegaScale @ 12,288 GPUs
    tokens_per_iteration: float = 6144 * 2048
    checkpoint_interval_iterations: int = 150
    heartbeat_interval: float = 10.0
    heartbeat_timeout: float = 30.0
    nccl_hang_timeout: float = 120.0  # traffic-ceased detection window
    manual_intervention_time: float = 2400.0  # the ~10% needing humans
    silent_fault_detection_time: float = 6 * 3600.0  # heat-map review cadence
    kubernetes_replacement_time: float = 40.0
    checkpoint_load_optimized: bool = True
    # Wall time to provision fresh machines once the spare pool is empty
    # and no elastic shrink is possible (paging + racking a node).
    spare_provisioning_time: float = 1800.0


@dataclass(frozen=True)
class IncidentOutcome:
    """Everything one fault costs, resolved by the recovery pipeline."""

    downtime: float  # after detection
    diagnose: float
    auto: bool
    lost_iterations: int
    extra_lost_iterations: int  # from an N-1 checkpoint fallback
    fell_back: bool
    spares_consumed: int
    replan: Optional[ElasticDecision]
    load: Optional[CheckpointLoadOutcome]


@dataclass
class ProductionRunResult:
    """Everything Figure 11 and §6.3 report about one run."""

    wall_time: float
    completed_iterations: int
    restarts: int
    log: RecoveryLog
    loss_points: List[Tuple[float, float, int]] = field(default_factory=list)
    # (wall time, loss, restart index at that moment)
    # Healthy-equivalent iterations: each iteration weighted by the token
    # fraction its (possibly shrunken) plan trained.
    effective_iterations: float = 0.0
    final_dp: Optional[int] = None

    @property
    def tokens_trained(self) -> float:
        return self.loss_points[-1][0] if self.loss_points else 0.0

    def effective_rate(self, iteration_time: float) -> float:
        weighted = self.effective_iterations if self.effective_iterations > 0 else float(
            self.completed_iterations
        )
        return effective_training_rate(weighted, iteration_time, self.wall_time)


class ProductionRun:
    """Simulates a fault-ridden multi-week run at 10k+ GPU scale.

    With a ``cluster`` the spare pool is finite: replacements consume
    spares, and once they run out the run re-plans to a smaller DP
    degree through ``elastic`` (never stalls).  With an ``integrity``
    model checkpoint loads can hit corrupt shards and retry per
    ``retry_policy``, falling back to the N−1 checkpoint at the price of
    one extra checkpoint interval of lost iterations.
    """

    def __init__(
        self,
        plan: ParallelPlan,
        injector: FaultInjector,
        config: Optional[ProductionRunConfig] = None,
        planner: Optional[CheckpointPlanner] = None,
        loss_curve: Callable[[float], float] = default_loss_curve,
        diagnostics: Optional[DiagnosticSuite] = None,
        rng: Optional[np.random.Generator] = None,
        cluster: Optional[Cluster] = None,
        elastic: Optional[ElasticReplanner] = None,
        integrity: Optional[ShardIntegrityModel] = None,
        retry_policy: Optional[RetryPolicy] = None,
        gpus_per_node: int = 8,
        hub: Optional[object] = None,
        monitor_link_rate: float = 25e9,
    ) -> None:
        self.plan = plan
        self.injector = injector
        self.config = config or ProductionRunConfig()
        self.planner = planner
        self.loss_curve = loss_curve
        self.diagnostics = diagnostics or DiagnosticSuite()
        self.rng = rng if rng is not None else np.random.default_rng(42)
        self.cluster = cluster
        self.elastic = elastic or ElasticReplanner(
            model=planner.model if planner is not None else None
        )
        self.integrity = integrity
        self.retry_policy = retry_policy or RetryPolicy()
        self.gpus_per_node = gpus_per_node
        self.hub = hub
        self.monitors = LiveMonitors(hub, link_rate=monitor_link_rate) if hub else None

    # -- per-incident latencies ------------------------------------------------

    def detection_time(self, event: FaultEvent) -> float:
        cfg = self.config
        if event.kind.manifestation is Manifestation.EXPLICIT:
            # Caught by the next heartbeat's status/log keywords.
            return float(self.rng.uniform(0, cfg.heartbeat_interval)) + 2.0
        if event.kind.manifestation is Manifestation.HANG:
            # RDMA traffic ceased; needs a few silent windows to be sure.
            return cfg.nccl_hang_timeout + float(self.rng.uniform(0, cfg.heartbeat_interval))
        # Silent: surfaces at the next heat-map review (§5.1).
        return float(self.rng.uniform(0.2, 1.0)) * cfg.silent_fault_detection_time

    def replacement_overhead(self, needed: int, spare_count: Optional[int]) -> float:
        """Replacement wall time given spare availability.

        ``spare_count=None`` models an effectively infinite pool (the
        legacy behaviour).  An exhausted pool pays full provisioning —
        unless the elastic path sidesteps replacement entirely, which the
        incident resolver decides.
        """
        if needed == 0:
            return 0.0
        cfg = self.config
        if spare_count is None or spare_count >= needed:
            return cfg.kubernetes_replacement_time
        return cfg.spare_provisioning_time

    def _checkpoint_load(
        self, planner: Optional[CheckpointPlanner], bandwidth_factor: float
    ) -> Tuple[float, int, Optional[CheckpointLoadOutcome]]:
        """(load time, extra lost iterations, detail) for one restore."""
        cfg = self.config
        if planner is None:
            return 120.0, 0, None
        if self.integrity is None:
            return planner.recovery_time(cfg.checkpoint_load_optimized), 0, None
        outcome = planner.load_with_retry(
            self.rng,
            self.integrity,
            policy=self.retry_policy,
            optimized=cfg.checkpoint_load_optimized,
            bandwidth_factor=bandwidth_factor,
        )
        extra = cfg.checkpoint_interval_iterations if outcome.fell_back else 0
        return outcome.total_time, extra, outcome

    def _planner_for(self, plan: ParallelPlan) -> Optional[CheckpointPlanner]:
        if self.planner is None:
            return None
        if plan is self.plan or plan == self.planner.plan:
            return self.planner
        return CheckpointPlanner(
            model=self.planner.model, plan=plan, node=self.planner.node, hdfs=self.planner.hdfs
        )

    def resolve_incident(
        self,
        event: FaultEvent,
        plan: Optional[ParallelPlan] = None,
        spares_left: Optional[int] = None,
        available_gpus: Optional[int] = None,
    ) -> IncidentOutcome:
        """Price one fault end-to-end: diagnose, replace/shrink, re-init, load.

        The diagnostic sweep is sampled exactly once and threaded through
        both the downtime and the ``diagnosed_at`` timestamp.
        """
        cfg = self.config
        plan = plan if plan is not None else self.plan
        if available_gpus is None:
            available_gpus = plan.world_size
        diagnose = self.diagnostics.sweep_duration()
        auto = event.kind.auto_detectable
        manual = 0.0 if auto else cfg.manual_intervention_time

        needed = event.blast_radius if event.kind.needs_replacement else 0
        consumed = needed if spares_left is None else min(needed, spares_left)
        short = needed - consumed
        decision: Optional[ElasticDecision] = None
        replace = 0.0
        if needed:
            if short == 0:
                replace = cfg.kubernetes_replacement_time
            else:
                remaining = available_gpus - short * self.gpus_per_node
                if plan.world_size <= remaining:
                    # Idle survivors from an earlier shrink absorb the loss.
                    replace = cfg.kubernetes_replacement_time if consumed else 0.0
                else:
                    if remaining >= 1:
                        decision = self.elastic.replan(plan, remaining)
                    if decision is None:
                        # Nothing fits: stall for fresh machines.
                        replace = cfg.spare_provisioning_time
                    elif consumed:
                        replace = cfg.kubernetes_replacement_time

        resumed_plan = decision.new_plan if decision is not None else plan
        init = group_init_time(resumed_plan, REDIS_STORE, ordered=True).total
        lost = int(self.rng.integers(0, cfg.checkpoint_interval_iterations))
        bandwidth_factor = event.kind.degraded_throughput if not event.kind.needs_replacement else 1.0
        load, extra, load_outcome = self._checkpoint_load(
            self._planner_for(resumed_plan), bandwidth_factor
        )
        downtime = diagnose + manual + event.kind.repair_time + replace + init + load
        return IncidentOutcome(
            downtime=downtime,
            diagnose=diagnose,
            auto=auto,
            lost_iterations=lost,
            extra_lost_iterations=extra,
            fell_back=load_outcome.fell_back if load_outcome is not None else False,
            spares_consumed=consumed,
            replan=decision,
            load=load_outcome,
        )

    def recovery_downtime(
        self, event: FaultEvent, spare_count: Optional[int] = None
    ) -> Tuple[float, bool, int]:
        """(downtime after detection, auto?, lost iterations).

        Compatibility wrapper over :meth:`resolve_incident`; consults the
        cluster's spare pool when one is attached so replacement time
        reflects availability.
        """
        if spare_count is None and self.cluster is not None:
            spare_count = self.cluster.spare_count
        outcome = self.resolve_incident(event, spares_left=spare_count)
        return outcome.downtime, outcome.auto, outcome.lost_iterations

    # -- the run -------------------------------------------------------------------

    def run(self, duration: float) -> ProductionRunResult:
        """Simulate ``duration`` wall seconds of production training."""
        if duration <= 0:
            raise ValueError("duration must be positive")
        cfg = self.config
        events = self.injector.sample(duration)
        log = RecoveryLog()
        loss_points: List[Tuple[float, float, int]] = []

        wall = 0.0
        iterations = 0
        effective = 0.0  # iterations weighted by shrunken-epoch token fraction
        restarts = 0
        plan = self.plan
        healthy_dp = self.plan.dp
        factor = 1.0  # tokens-per-iteration fraction of the healthy plan
        spares_left = self.cluster.spare_count if self.cluster is not None else None
        available_gpus = plan.world_size

        def accrue(seconds: float, speed: float = 1.0) -> None:
            nonlocal iterations, effective
            done = int(seconds * speed / cfg.iteration_time)
            iterations += done
            effective += done * factor

        def record_loss() -> None:
            tokens = effective * cfg.tokens_per_iteration
            loss_points.append((tokens, self.loss_curve(tokens), restarts))
            if self.hub is not None:
                self.hub.sample("fault", "effective_iterations", wall, effective)

        record_loss()
        for event in events:
            if event.time <= wall:
                continue  # fault landed during a recovery window
            # Train until the fault.
            accrue(event.time - wall)
            wall = event.time
            record_loss()
            detect = self.detection_time(event)
            if event.kind.manifestation is Manifestation.SILENT:
                # Training limps on until the heat-map review: the slowest
                # participant gates the whole synchronous job.
                accrue(detect, speed=event.kind.degraded_throughput)
            outcome = self.resolve_incident(
                event, plan=plan, spares_left=spares_left, available_gpus=available_gpus
            )
            detected_at = wall + detect
            diagnosed_at = detected_at + outcome.diagnose
            resumed_at = detected_at + outcome.downtime
            if self.hub is not None:
                emit_incident_telemetry(
                    self.hub, event, detected_at, resumed_at,
                    auto=outcome.auto,
                    lost_iterations=outcome.lost_iterations,
                    spares_consumed=outcome.spares_consumed,
                    fell_back=outcome.fell_back,
                    monitors=self.monitors,
                )
            log.add(
                RecoveryRecord(
                    fault=event,
                    detected_at=detected_at,
                    diagnosed_at=diagnosed_at,
                    resumed_at=resumed_at,
                    auto=outcome.auto,
                    lost_iterations=outcome.lost_iterations,
                    fallback_load=outcome.fell_back,
                    extra_lost_iterations=outcome.extra_lost_iterations,
                    replanned_dp=outcome.replan.new_plan.dp if outcome.replan else None,
                    nodes_lost=event.blast_radius,
                    spares_consumed=outcome.spares_consumed,
                )
            )
            rolled_back = outcome.lost_iterations + outcome.extra_lost_iterations
            iterations = max(0, iterations - rolled_back)
            effective = max(0.0, effective - rolled_back * factor)
            if spares_left is not None:
                spares_left -= outcome.spares_consumed
            if event.kind.needs_replacement:
                short = event.blast_radius - outcome.spares_consumed
                available_gpus -= short * self.gpus_per_node
            if outcome.replan is not None:
                plan = outcome.replan.new_plan
                factor = plan.dp / healthy_dp
                if self.hub is not None:
                    self.hub.instant(
                        "fault", "dp-shrink", resumed_at,
                        rank=event.node_index, dp=plan.dp, healthy_dp=healthy_dp,
                    )
                log.add_degraded(
                    DegradedInterval(
                        start=resumed_at,
                        dp=plan.dp,
                        healthy_dp=healthy_dp,
                        reason=f"{event.kind.name}@{event.domain or event.node_index}",
                    )
                )
            wall = resumed_at
            restarts += 1
            record_loss()
            if wall >= duration:
                break
        if wall < duration:
            accrue(duration - wall)
            wall = duration
            record_loss()
        log.close_degraded(wall)
        if self.hub is not None:
            for interval in log.degraded:
                self.hub.span(
                    "fault",
                    "degraded-dp",
                    0,
                    interval.start,
                    interval.end if interval.end is not None else wall,
                    stream="degraded",
                    dp=interval.dp,
                    healthy_dp=interval.healthy_dp,
                    reason=interval.reason,
                )
        return ProductionRunResult(
            wall_time=wall,
            completed_iterations=iterations,
            restarts=restarts,
            log=log,
            loss_points=loss_points,
            effective_iterations=effective,
            final_dp=plan.dp,
        )


def catch_up_time(config: ProductionRunConfig) -> float:
    """Expected time to regain pre-crash progress after resuming (§6.3).

    Lost progress averages half a checkpoint interval; "catching up"
    means re-running those iterations.
    """
    return lost_progress(config.checkpoint_interval_iterations, config.iteration_time)

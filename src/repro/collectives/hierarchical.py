"""Hierarchical (two-level) collective algorithms.

NCCL at scale does not run one flat ring across thousands of GPUs: it
reduces inside each node over NVLink, runs the inter-node phase with one
GPU per node per rail, then broadcasts intra-node.  The latency term
drops from O(world) to O(nodes) and the slow inter-node hop moves only
1/gpus_per_node of the ring steps.

Cost model + a comparison helper that shows where hierarchical beats the
flat ring (large worlds, latency-dominated sizes) — one of the reasons
DP rings at dp=192 are still viable in Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass

from .primitives import ring_all_gather, ring_all_reduce, ring_reduce_scatter


@dataclass(frozen=True)
class HierarchicalCost:
    """Breakdown of a two-level collective."""

    intra_reduce: float
    inter_phase: float
    intra_broadcast: float

    @property
    def total(self) -> float:
        return self.intra_reduce + self.inter_phase + self.intra_broadcast


def hierarchical_all_reduce(
    size: float,
    n_nodes: int,
    gpus_per_node: int,
    intra_bandwidth: float,
    inter_bandwidth: float,
    intra_latency: float = 7e-6,
    inter_latency: float = 12e-6,
) -> HierarchicalCost:
    """Two-level all-reduce: NVLink reduce-scatter, inter-node all-reduce
    of the local shard, NVLink all-gather."""
    if n_nodes < 1 or gpus_per_node < 1:
        raise ValueError("need at least one node and one GPU per node")
    if size < 0:
        raise ValueError("size must be non-negative")
    intra_rs = ring_reduce_scatter(size, gpus_per_node, intra_bandwidth, intra_latency)
    # Each GPU then owns size/gpus_per_node bytes and joins an inter-node
    # ring with its rail peers (all rails run concurrently).
    inter = ring_all_reduce(size / gpus_per_node, n_nodes, inter_bandwidth, inter_latency)
    intra_ag = ring_all_gather(size, gpus_per_node, intra_bandwidth, intra_latency)
    return HierarchicalCost(intra_reduce=intra_rs, inter_phase=inter, intra_broadcast=intra_ag)


def flat_all_reduce(
    size: float,
    n_nodes: int,
    gpus_per_node: int,
    inter_bandwidth: float,
    inter_latency: float = 12e-6,
) -> float:
    """One ring over every GPU; every step crosses the network."""
    world = n_nodes * gpus_per_node
    return ring_all_reduce(size, world, inter_bandwidth, inter_latency)


def hierarchical_speedup(
    size: float,
    n_nodes: int,
    gpus_per_node: int = 8,
    intra_bandwidth: float = 250e9,
    inter_bandwidth: float = 22.5e9,
) -> float:
    """flat time / hierarchical time for one configuration."""
    flat = flat_all_reduce(size, n_nodes, gpus_per_node, inter_bandwidth)
    hier = hierarchical_all_reduce(
        size, n_nodes, gpus_per_node, intra_bandwidth, inter_bandwidth
    ).total
    return flat / hier

"""Event-driven collective execution over the fabric.

The analytic alpha–beta models in :mod:`repro.collectives.primitives`
price collectives in closed form.  This module *executes* a ring
collective step by step on the simulation kernel, moving each segment as
a flow over the actual CLOS links with max-min bandwidth sharing — both
a validation of the closed forms (they must agree on a clean fabric) and
the tool for studying collectives under degraded links, background
traffic, or heterogeneous paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..network.flow import Flow, IncrementalMaxMinSolver, max_min_fair_rates
from ..network.link import Link
from ..network.topology import ClosFabric
from ..sim import Process, Simulator
from .fabric import PfcPenaltyModel, price_routed_step


@dataclass
class RingStepResult:
    """Timing of one ring step (all ranks transfer concurrently)."""

    step: int
    duration: float
    slowest_pair: int  # ring position of the slowest transfer
    max_link_load: int = 0  # flows sharing the most-loaded link
    utilization: float = 0.0  # bottleneck link's allocated-rate utilization
    paused_flows: int = 0  # flows paying a PFC penalty this step


@dataclass
class CollectiveRun:
    """Outcome of executing one collective on the event kernel."""

    kind: str
    n_ranks: int
    total_time: float
    steps: List[RingStepResult] = field(default_factory=list)

    @property
    def slowest_step(self) -> float:
        return max((s.duration for s in self.steps), default=0.0)


class RingCollectiveRuntime:
    """Executes ring collectives between nodes of a fabric."""

    def __init__(
        self,
        fabric: ClosFabric,
        node_of_rank: Sequence[int],
        rail: int = 0,
        per_hop_latency: float = 1e-6,
        software_latency: float = 7e-6,
        cc_efficiency: float = 1.0,
        flow_demand: Optional[float] = None,
        penalty: Optional[PfcPenaltyModel] = None,
    ) -> None:
        """``cc_efficiency``/``flow_demand``/``penalty`` opt into the
        fabric backend's derating (see :mod:`repro.collectives.fabric`);
        the defaults (ideal transport, unbounded demand, no PFC) keep the
        historical clean-fabric behaviour that matches the alpha-beta
        closed forms."""
        if not node_of_rank:
            raise ValueError("need at least one rank")
        self.fabric = fabric
        self.node_of_rank = list(node_of_rank)
        self.rail = rail
        self.per_hop_latency = per_hop_latency
        self.software_latency = software_latency
        self.cc_efficiency = cc_efficiency
        self.flow_demand = flow_demand
        self.penalty = penalty

    def _step_paths(self) -> List[List[Link]]:
        """The neighbour-pair link paths used by every ring step."""
        n = len(self.node_of_rank)
        paths = []
        for i in range(n):
            src = self.node_of_rank[i]
            dst = self.node_of_rank[(i + 1) % n]
            if src == dst:
                paths.append([])  # same host: modelled as instantaneous here
            else:
                paths.append(self.fabric.path(src, dst, rail=self.rail, flow_id=i))
        return paths

    def _step_flows(self) -> List[Flow]:
        """Inter-node flows of one ring step (same-host pairs skipped)."""
        per_flow_demand = float("inf") if self.flow_demand is None else self.flow_demand
        return [
            Flow(flow_id=i, path=path, demand=per_flow_demand)
            for i, path in enumerate(self._step_paths())
            if path
        ]

    def run(
        self,
        kind: str,
        size: float,
        sim: Optional[Simulator] = None,
        hub=None,
        rank: int = 0,
        at: float = 0.0,
    ) -> CollectiveRun:
        """Execute ``kind`` of a ``size``-byte tensor; returns its timing.

        Each ring step is a barrier: all pairwise transfers proceed
        concurrently with max-min shared bandwidth, and the step ends when
        the slowest finishes (NCCL's synchronous ring pipeline).  With a
        :class:`~repro.observability.TelemetryHub` as ``hub`` the whole
        collective lands as one span on the ``collectives`` lane (row
        ``rank``) with bytes/algorithm attributes plus congestion evidence
        (``max_link_load``/``paused_flows``), offset by ``at`` so callers
        can place it on an absolute scenario clock.
        """
        if size < 0:
            raise ValueError("size must be non-negative")
        n = len(self.node_of_rank)
        if kind == "all_gather" or kind == "reduce_scatter":
            n_steps = n - 1
        elif kind == "all_reduce":
            n_steps = 2 * (n - 1)
        else:
            raise ValueError(f"unsupported collective {kind!r}")
        if n == 1 or size == 0 or n_steps == 0:
            run = CollectiveRun(kind=kind, n_ranks=n, total_time=0.0)
            self._emit_telemetry(
                hub, run, size, rank, start=(sim.now if sim else 0.0) + at
            )
            return run

        sim = sim or Simulator()
        start = sim.now
        # One flow set serves every step: the solver caches the max-min
        # allocation across the ring's identical steps and re-solves only
        # if a link flaps mid-collective (link watchers invalidate it).
        flows = self._step_flows()
        solver = IncrementalMaxMinSolver(flows)
        segment = size / n
        steps: List[RingStepResult] = []
        done = {"t": 0.0}

        def driver():
            for step in range(n_steps):
                solver.solve()
                cost = price_routed_step(
                    flows,
                    segment,
                    demand=self.flow_demand,
                    software_latency=self.software_latency,
                    cc_efficiency=self.cc_efficiency,
                    penalty=self.penalty,
                )
                steps.append(
                    RingStepResult(
                        step,
                        cost.duration,
                        cost.slowest_flow,
                        cost.max_link_load,
                        cost.utilization,
                        cost.paused_flows,
                    )
                )
                yield sim.timeout(cost.duration)
            done["t"] = sim.now

        Process(sim, driver(), name=f"{kind}-ring")
        sim.run()
        run = CollectiveRun(kind=kind, n_ranks=n, total_time=done["t"] - start, steps=steps)
        self._emit_telemetry(hub, run, size, rank, start=start + at)
        return run

    def _emit_telemetry(
        self, hub, run: CollectiveRun, size: float, rank: int, start: float
    ) -> None:
        if hub is None:
            return
        worst = max(run.steps, key=lambda s: s.max_link_load, default=None)
        hub.span(
            "collectives",
            run.kind,
            rank,
            start,
            start + run.total_time,
            stream="comm",
            bytes=size,
            algorithm="ring",
            n_ranks=run.n_ranks,
            steps=len(run.steps),
            max_link_load=worst.max_link_load if worst else 0,
            paused_flows=worst.paused_flows if worst else 0,
            utilization=worst.utilization if worst else 0.0,
        )
        hub.count("collectives", "executed", 1, kind=run.kind)
        hub.count("collectives", "bytes_moved", size)
        for step in run.steps:
            hub.observe("collectives", "step_time", step.duration, kind=run.kind)
        if run.steps:
            # Rail index doubles as the gauge's rank/tid, keeping one
            # series per rail.
            first = run.steps[0]
            t = start + run.total_time
            hub.sample(
                "network", "ring_link_utilization", t=t, value=first.utilization,
                rank=self.rail,
            )
            hub.sample(
                "network", "ring_max_link_load", t=t, value=float(first.max_link_load),
                rank=self.rail,
            )


def concurrent_rings_time(
    fabric: ClosFabric,
    rings: List[Sequence[int]],
    size: float,
    rails: Optional[List[int]] = None,
) -> float:
    """One ring step of several *simultaneous* rings sharing the fabric.

    Used to study DP-ring contention: all rings' neighbour transfers are
    active at once; the returned time is the slowest transfer's, i.e. the
    stall every ring observes at each pipeline step.
    """
    if not rings:
        raise ValueError("need at least one ring")
    rails = rails if rails is not None else [i % fabric.rails for i in range(len(rings))]
    flows: List[Flow] = []
    fid = 0
    for ring, rail in zip(rings, rails):
        n = len(ring)
        for i in range(n):
            src, dst = ring[i], ring[(i + 1) % n]
            if src == dst:
                continue
            flows.append(Flow(flow_id=fid, path=fabric.path(src, dst, rail, flow_id=fid)))
            fid += 1
    if not flows:
        return 0.0
    max_min_fair_rates(flows)
    segment = size / max(len(r) for r in rings)
    return max(segment / f.rate + sum(l.latency for l in f.path) for f in flows)

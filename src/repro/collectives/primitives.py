"""Analytic cost models for collective communication.

These are the standard alpha–beta models for ring/tree algorithms, used by
NCCL's own tuner.  ``size`` is always the *full* tensor size in bytes (the
payload each rank ends up having contributed to / received), ``bandwidth``
the per-rank, per-direction link bandwidth in bytes/s, and ``latency`` the
per-hop startup cost in seconds.

A fabric-aware layer (:mod:`repro.collectives.groups`) picks the bandwidth
and latency from the cluster topology and congestion state; these
functions are deliberately pure so they can also be unit-tested against
closed forms.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exec.memo import memoized

# Fraction of line rate a well-tuned RDMA transport sustains (framing,
# congestion-control headroom).  The MegaScale CC work (§3.6) is what
# keeps this high; the ECMP/fabric models layer the topology losses on
# top.
DEFAULT_CC_EFFICIENCY = 0.90
INTER_NODE_LATENCY = 12e-6  # NIC + 2-6 switch hops + software

# Pricing models selectable wherever a collective is costed: "analytic"
# is the closed-form alpha-beta family below; "fabric" expands the
# collective into per-step flows routed over a ClosFabric
# (:mod:`repro.collectives.fabric`).
COST_BACKENDS = ("analytic", "fabric")


def validate_backend(backend: str) -> str:
    if backend not in COST_BACKENDS:
        raise ValueError(f"unknown cost backend {backend!r} (have {COST_BACKENDS})")
    return backend


def _check(size: float, n_ranks: int, bandwidth: float, latency: float) -> None:
    if size < 0:
        raise ValueError(f"negative collective size: {size}")
    if n_ranks < 1:
        raise ValueError(f"collective needs >= 1 rank, got {n_ranks}")
    if bandwidth <= 0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth}")
    if latency < 0:
        raise ValueError(f"negative latency: {latency}")


def ring_all_reduce(size: float, n_ranks: int, bandwidth: float, latency: float = 0.0) -> float:
    """Ring all-reduce: 2(n-1)/n of the data crosses each link."""
    _check(size, n_ranks, bandwidth, latency)
    if n_ranks == 1 or size == 0:
        return 0.0
    steps = 2 * (n_ranks - 1)
    return steps * (size / n_ranks) / bandwidth + steps * latency


def ring_all_gather(size: float, n_ranks: int, bandwidth: float, latency: float = 0.0) -> float:
    """Ring all-gather of a tensor whose *gathered* size is ``size``."""
    _check(size, n_ranks, bandwidth, latency)
    if n_ranks == 1 or size == 0:
        return 0.0
    steps = n_ranks - 1
    return steps * (size / n_ranks) / bandwidth + steps * latency


def ring_reduce_scatter(size: float, n_ranks: int, bandwidth: float, latency: float = 0.0) -> float:
    """Ring reduce-scatter of a tensor whose *full* size is ``size``."""
    # Symmetric with all-gather in the ring formulation.
    return ring_all_gather(size, n_ranks, bandwidth, latency)


def tree_broadcast(size: float, n_ranks: int, bandwidth: float, latency: float = 0.0) -> float:
    """Binary-tree broadcast (used for checkpoint-recovery fan-out, §4.4)."""
    _check(size, n_ranks, bandwidth, latency)
    if n_ranks == 1 or size == 0:
        return 0.0
    import math

    depth = math.ceil(math.log2(n_ranks))
    return depth * (size / bandwidth + latency)


def all_to_all(size: float, n_ranks: int, bandwidth: float, latency: float = 0.0) -> float:
    """All-to-all where each rank holds ``size`` bytes total to distribute."""
    _check(size, n_ranks, bandwidth, latency)
    if n_ranks == 1 or size == 0:
        return 0.0
    return size * (n_ranks - 1) / n_ranks / bandwidth + (n_ranks - 1) * latency


def point_to_point(size: float, bandwidth: float, latency: float = 0.0) -> float:
    """A single send/recv pair (pipeline-parallel activations)."""
    _check(size, 1, bandwidth, latency)
    return size / bandwidth + latency


@dataclass(frozen=True)
class CollectiveCost:
    """A computed collective time with its inputs, for tracing."""

    kind: str
    size: float
    n_ranks: int
    bandwidth: float
    latency: float
    time: float


_DISPATCH = {
    "all_reduce": ring_all_reduce,
    "all_gather": ring_all_gather,
    "reduce_scatter": ring_reduce_scatter,
    "broadcast": tree_broadcast,
    "all_to_all": all_to_all,
}


@memoized("collective_cost")
def _analytic_collective_cost(
    kind: str, size: float, n_ranks: int, bandwidth: float, latency: float = 0.0
) -> CollectiveCost:
    if kind == "p2p":
        time = point_to_point(size, bandwidth, latency)
    else:
        fn = _DISPATCH.get(kind)
        if fn is None:
            raise ValueError(f"unknown collective kind {kind!r}")
        time = fn(size, n_ranks, bandwidth, latency)
    return CollectiveCost(kind, size, n_ranks, bandwidth, latency, time)


def collective_cost(
    kind: str,
    size: float,
    n_ranks: int,
    bandwidth: float,
    latency: float = 0.0,
    backend: str = "analytic",
    fabric=None,
    nodes=None,
) -> CollectiveCost:
    """Uniform entry point used by the tracing layer.

    ``backend`` selects the pricing model.  ``"analytic"`` (the default)
    is the closed-form alpha-beta family above, memoized under the
    ``collective_cost`` cache.  ``"fabric"`` routes the collective's
    per-step flow set over a :class:`~repro.network.topology.ClosFabric`
    — ``fabric=`` and the ring's ``nodes=`` (fabric node index per rank)
    are then required, ``bandwidth``/``latency`` are ignored in favour
    of the routed links, and results memoize under the
    ``fabric_collective_cost`` cache keyed by the fabric's fingerprint
    (see :mod:`repro.collectives.fabric`).
    """
    validate_backend(backend)
    if backend == "analytic":
        return _analytic_collective_cost(kind, size, n_ranks, bandwidth, latency)
    from .fabric import fabric_collective_cost  # imported here: fabric imports us

    if fabric is None or nodes is None:
        raise ValueError("backend='fabric' needs fabric= and nodes=")
    routed = fabric_collective_cost(kind, size, tuple(nodes), fabric)
    return CollectiveCost(
        kind, size, len(tuple(nodes)), routed.effective_bandwidth, latency, routed.time
    )

"""Rendezvous key-value stores (§3.5).

torch.distributed initializes communication groups through a central KV
store.  Two implementations matter for the paper:

* **TCPStore** — single-threaded, blocking read-write.  Under a poll
  storm (thousands of ranks spinning on a barrier key) every poll
  serializes behind every other request: a convoy that roughly triples
  the wall time of every store-backed barrier (the event-driven
  demonstration below measures ~3x, matching the paper's 1047 s -> 361 s
  improvement from swapping the store).
* **Redis-style async store** — non-blocking, pipelined: requests overlap
  and waiting polls cost nothing at the server.

Both an analytic model (used at 10k-GPU scale) and a discrete-event
implementation (used in tests to demonstrate the convoy mechanically) are
provided.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim import Process, Resource, Simulator


@dataclass(frozen=True)
class StoreModel:
    """Analytic throughput model of one store implementation."""

    name: str
    op_time: float  # effective seconds per op under load
    blocking: bool  # True -> barrier polls convoy (quadratic regime)

    def barrier_time(self, n_ranks: int) -> float:
        """Time for one store-based global barrier over ``n_ranks``.

        Every rank issues O(1) ops against the central store, so one
        barrier costs ``n * op_time``.  The store implementation sets
        ``op_time``: the blocking single-threaded TCPStore convoys
        concurrent requests (see :func:`simulated_barrier_time` for the
        mechanism), tripling its effective per-op cost versus an async
        Redis-style store.  The O(n^2) -> O(n) fix of §3.5 is about how
        *many* barriers run (one per group vs a constant few); that lives
        in :mod:`repro.collectives.init`.
        """
        if n_ranks < 1:
            raise ValueError("n_ranks must be >= 1")
        return n_ranks * self.op_time

    def rendezvous_time(self, group_size: int, ops_per_member: int = 4) -> float:
        """Key exchange to form one group (addresses, NCCL unique ids)."""
        if group_size < 1:
            raise ValueError("group_size must be >= 1")
        return group_size * ops_per_member * self.op_time


# Calibrated against the paper's measurement sequence on 2048 GPUs:
# 1047 s (TCPStore) -> 361 s (Redis) -> < 5 s (ordered barriers).
TCP_STORE = StoreModel(name="tcpstore", op_time=203e-6, blocking=True)
REDIS_STORE = StoreModel(name="redis", op_time=70e-6, blocking=False)

STORE_CATALOG = {s.name: s for s in (TCP_STORE, REDIS_STORE)}


class SimulatedKvServer:
    """Event-driven store used to *demonstrate* the convoy in tests.

    A blocking server owns a single service slot; clients queue for it.
    An async server services any number of requests concurrently (the
    event loop is the only serialization).
    """

    def __init__(self, sim: Simulator, op_time: float, blocking: bool) -> None:
        if op_time <= 0:
            raise ValueError("op_time must be positive")
        self.sim = sim
        self.op_time = op_time
        self.blocking = blocking
        self.ops_served = 0
        self._slot = Resource(sim, capacity=1, name="kv-server") if blocking else None

    def request(self):
        """Process generator: one client operation."""
        if self._slot is not None:
            yield self._slot.acquire()
            yield self.sim.timeout(self.op_time)
            self._slot.release()
        else:
            yield self.sim.timeout(self.op_time)
        self.ops_served += 1


def simulated_barrier_time(
    n_ranks: int,
    op_time: float,
    blocking: bool,
    poll_interval: float = 0.0,
    arrival_stagger: float = None,  # type: ignore[assignment]
) -> float:
    """Run an actual store-backed barrier on the event loop; return its wall time.

    Each rank sets its arrival key, then polls until all ranks arrived.
    Ranks reach the barrier staggered (as they do in real jobs — each
    finishes its previous work at a slightly different time); with a
    blocking store, early ranks' polls convoy ahead of late ranks' SETs,
    which is exactly the quadratic blow-up of §3.5.  ``poll_interval == 0``
    means ranks re-poll immediately (the worst-case spin
    torch.distributed exhibits under a slow store).
    """
    if n_ranks < 1:
        raise ValueError("n_ranks must be >= 1")
    if arrival_stagger is None:
        arrival_stagger = op_time
    sim = Simulator()
    server = SimulatedKvServer(sim, op_time, blocking)
    arrived = {"count": 0}
    done_at = {"t": 0.0}

    def rank_proc(rank: int):
        if arrival_stagger:
            yield sim.timeout(rank * arrival_stagger)
        yield server.request()  # SET own arrival
        arrived["count"] += 1
        while arrived["count"] < n_ranks:
            if poll_interval:
                yield sim.timeout(poll_interval)
            yield server.request()  # GET the counter
        done_at["t"] = max(done_at["t"], sim.now)

    for r in range(n_ranks):
        Process(sim, rank_proc(r), name=f"rank{r}")
    sim.run()
    return done_at["t"]

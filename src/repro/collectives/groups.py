"""Fabric-aware collective timing for 3D-parallel communication groups.

TP collectives run on NVLink and are costed in :mod:`repro.model.blocks`.
This module prices the *inter-node* traffic: data-parallel ring
collectives and pipeline-parallel point-to-point transfers, taking the
actual CLOS paths into account:

* DP rings are rail-aligned — each GPU rides its own NIC — so the ring's
  bandwidth is the slowest neighbour-pair link, derated by congestion-
  control efficiency and (for cross-pod hops) ECMP conflict losses.
* PP neighbours sit ``dp`` nodes apart (dp-before-pp layout), usually in
  the same pod, sometimes across pods.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..exec.memo import memoized
from ..hardware.node import NodeSpec
from ..network.topology import ClosFabric, shared_fabric
from ..parallel.placement import Placement
from ..parallel.plan import ParallelPlan
from .fabric import FabricCostModel, fabric_collective_cost
from .primitives import (
    DEFAULT_CC_EFFICIENCY,
    INTER_NODE_LATENCY,
    point_to_point,
    ring_all_gather,
    ring_all_reduce,
    ring_reduce_scatter,
    validate_backend,
)


@memoized("conflict_factor")
def cross_pod_conflict_factor(active_nodes_per_pod: int = 64, uplinks: int = 32) -> float:
    """Expected throughput factor for traffic crossing the ToR uplinks.

    When a job spans pods, every node's rail pushes a 200G flow through
    its ToR's 32x400G uplinks; ECMP hash conflicts of 3+ flows degrade
    the colliding flows even with split ports (§3.6).  Computed from the
    Monte-Carlo conflict model so the number is mechanistic, not fitted.
    """
    from ..network.ecmp import expected_conflict_stats

    flows = min(64, max(1, active_nodes_per_pod))
    stats = expected_conflict_stats(
        n_flows=flows, n_uplinks=uplinks, uplink_to_flow_rate=2.0, trials=100
    )
    return stats.mean_flow_throughput


@dataclass
class GroupCommModel:
    """Prices collectives for one (plan, placement, fabric) deployment.

    ``backend`` selects the pricing model (see
    :data:`~repro.collectives.primitives.COST_BACKENDS`): ``"analytic"``
    uses the alpha-beta forms with topology-derived bandwidth derating;
    ``"fabric"`` routes every collective's per-step flows over the
    actual CLOS links (:mod:`repro.collectives.fabric`).
    """

    plan: ParallelPlan
    fabric: ClosFabric
    placement: Optional[Placement] = None
    node_spec: Optional[NodeSpec] = None
    cc_efficiency: float = DEFAULT_CC_EFFICIENCY
    inter_node_latency: float = INTER_NODE_LATENCY
    backend: str = "analytic"

    def __post_init__(self) -> None:
        if self.node_spec is None:
            self.node_spec = NodeSpec()
        if not 0 < self.cc_efficiency <= 1:
            raise ValueError("cc_efficiency must be in (0, 1]")
        if self.inter_node_latency < 0:
            raise ValueError("inter_node_latency must be non-negative")
        validate_backend(self.backend)
        self._nic_rate = self.node_spec.nic_spec.line_rate
        self._conflict_factor = cross_pod_conflict_factor()
        self._fabric_model = None
        if self.backend == "fabric":
            self._fabric_model = FabricCostModel(
                self.fabric, cc_efficiency=self.cc_efficiency, nic_rate=self._nic_rate
            )

    # -- helpers -------------------------------------------------------------

    def _node_of_rank(self, rank: int) -> int:
        """Fabric node index hosting a rank (packed 8 ranks/node)."""
        return rank // self.node_spec.gpus_per_node

    def _pair_bandwidth(self, rank_a: int, rank_b: int) -> float:
        """Effective bytes/s between two ranks' NICs."""
        node_a, node_b = self._node_of_rank(rank_a), self._node_of_rank(rank_b)
        if node_a == node_b:
            # Same host: NVLink/PCIe shortcut, far faster than the NIC.
            return self.node_spec.gpu_spec.nvlink_bandwidth
        rate = self._nic_rate * self.cc_efficiency
        if not self.fabric.same_tor(node_a, node_b):
            rate *= self._conflict_factor
        return rate

    def ring_bandwidth(self, ranks: List[int]) -> float:
        """Slowest neighbour-pair bandwidth around the ring."""
        if len(ranks) < 2:
            return float("inf")
        rate = float("inf")
        for i, rank in enumerate(ranks):
            nxt = ranks[(i + 1) % len(ranks)]
            rate = min(rate, self._pair_bandwidth(rank, nxt))
        return rate

    # -- DP collectives --------------------------------------------------------

    def dp_collective_time(self, kind: str, size: float, ranks: Optional[List[int]] = None) -> float:
        """Time of one DP collective of ``size`` bytes (full tensor)."""
        if kind not in ("all_gather", "reduce_scatter", "all_reduce"):
            raise ValueError(f"unknown DP collective {kind!r}")
        ranks = ranks if ranks is not None else self.plan.dp_group(0)
        n = len(ranks)
        if n == 1:
            return 0.0
        if self.backend == "fabric":
            nodes = tuple(self._node_of_rank(r) for r in ranks)
            return fabric_collective_cost(
                kind,
                size,
                nodes,
                self.fabric,
                cc_efficiency=self.cc_efficiency,
                nic_rate=self._nic_rate,
            ).time
        bandwidth = self.ring_bandwidth(ranks)
        if kind == "all_gather":
            return ring_all_gather(size, n, bandwidth, self.inter_node_latency)
        if kind == "reduce_scatter":
            return ring_reduce_scatter(size, n, bandwidth, self.inter_node_latency)
        return ring_all_reduce(size, n, bandwidth, self.inter_node_latency)

    # -- PP point-to-point -------------------------------------------------------

    def pp_p2p_time(self, size: float, src_rank: int = 0, dst_rank: Optional[int] = None) -> float:
        """Activation/gradient transfer between adjacent pipeline stages."""
        if dst_rank is None:
            dst_rank = self.plan.next_pp_rank(src_rank)
        node_a, node_b = self._node_of_rank(src_rank), self._node_of_rank(dst_rank)
        if self._fabric_model is not None and node_a != node_b:
            return self._fabric_model.p2p_time(size, node_a, node_b, flow_id=src_rank)
        bandwidth = self._pair_bandwidth(src_rank, dst_rank)
        return point_to_point(size, bandwidth, self.inter_node_latency)

    # -- diagnostics -------------------------------------------------------------

    def describe(self) -> str:
        dp_bw = self.ring_bandwidth(self.plan.dp_group(0))
        return (
            f"GroupCommModel(nic={self._nic_rate / 125e6:.0f}Gbps, "
            f"cc_eff={self.cc_efficiency:.2f}, dp_ring={dp_bw / 1e9:.1f}GB/s, "
            f"backend={self.backend})"
        )


def build_comm_model(
    plan: ParallelPlan,
    nodes_per_pod: int = 64,
    node_spec: Optional[NodeSpec] = None,
    cc_efficiency: float = DEFAULT_CC_EFFICIENCY,
    inter_node_latency: float = INTER_NODE_LATENCY,
    backend: str = "analytic",
) -> GroupCommModel:
    """Convenience constructor: build a right-sized fabric for the plan.

    Fabrics are interned via :func:`~repro.network.topology.shared_fabric`,
    so plan-search loops that price hundreds of candidates on the same
    cluster shape reuse one fabric (and its warm cost memo) instead of
    rebuilding tens of thousands of links per candidate.
    """
    node_spec = node_spec or NodeSpec()
    n_nodes = -(-plan.world_size // node_spec.gpus_per_node)
    fabric = shared_fabric(n_nodes=n_nodes, nodes_per_pod=nodes_per_pod)
    return GroupCommModel(
        plan=plan,
        fabric=fabric,
        node_spec=node_spec,
        cc_efficiency=cc_efficiency,
        inter_node_latency=inter_node_latency,
        backend=backend,
    )

"""Collective communication group initialization (§3.5).

Reproduces the paper's measurement sequence on 2048 GPUs:

=================================  ==========
configuration                      init time
=================================  ==========
TCPStore + per-group barriers      ~1047 s
Redis + per-group barriers         ~361 s
Redis + ordered (O(n) barriers)    < 5 s
=================================  ==========

and < 30 s at 10,000+ GPUs with both optimizations.

Mechanism: ``torch.distributed.new_group`` is collective over the whole
world — every rank participates in every group creation — and the naive
flow runs a store-backed *global barrier* after each one.  With O(n)
groups in a 3D-parallel job, that is O(n) barriers of O(n) store ops:
O(n^2) total, served by a store whose per-op cost the implementation
determines.  Ordering group creation so that synchronization happens once
per *class* of groups cuts the barrier count to a constant.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..parallel.plan import ParallelPlan
from .kvstore import REDIS_STORE, STORE_CATALOG, StoreModel, TCP_STORE

# Store synchronizations torch.distributed performs per new_group call in
# the naive flow (prefix-store setup, rendezvous completion, trailing
# global barrier).
BARRIERS_PER_GROUP_NAIVE = 3
# Global barriers in the carefully ordered flow: one per group *class*
# (tp / dp / pp / embedding and friends), independent of world size.
BARRIERS_ORDERED = 8
# NCCL communicator bootstrap per group (unique-id broadcast, ring build):
# charged once per group member, overlapping across groups when ordered.
NCCL_BOOTSTRAP_PER_RANK = 0.9e-3
# When group creation is ordered, rendezvous for independent groups
# pipelines through the store (roughly the store's request-pipeline
# depth); the naive flow's interleaved barriers serialize it instead.
ORDERED_RENDEZVOUS_PIPELINING = 4.0


def _round_half_up(value: float) -> int:
    """Round to nearest int, halves up (``int()`` truncation biases low)."""
    return int(math.floor(value + 0.5))


@dataclass(frozen=True)
class InitBreakdown:
    """Where group-initialization time goes."""

    store: str
    ordered: bool
    world_size: int
    n_groups: int
    barrier_count: int
    barrier_time: float
    rendezvous_time: float
    nccl_bootstrap_time: float

    @property
    def total(self) -> float:
        return self.barrier_time + self.rendezvous_time + self.nccl_bootstrap_time


def count_groups(plan: ParallelPlan) -> int:
    """Communication groups a 3D-parallel job creates.

    One group per (tp, dp, pp) slice plus the world group and embedding
    groups (first/last-stage ties in Megatron).
    """
    n_tp = plan.pp * plan.dp
    n_dp = plan.pp * plan.tp
    n_pp = plan.dp * plan.tp
    n_embedding = plan.dp * plan.tp
    return n_tp + n_dp + n_pp + n_embedding + 1


def group_init_time(
    plan: ParallelPlan,
    store: StoreModel = TCP_STORE,
    ordered: bool = False,
) -> InitBreakdown:
    """Initialization wall time for the given configuration."""
    n = plan.world_size
    n_groups = count_groups(plan)
    if ordered:
        barrier_count = BARRIERS_ORDERED
    else:
        barrier_count = BARRIERS_PER_GROUP_NAIVE * n_groups
    barrier_time = barrier_count * store.barrier_time(n)

    # Rendezvous key exchange per group, sized by its membership.
    avg_group_size = (
        plan.tp * (plan.pp * plan.dp)
        + plan.dp * (plan.pp * plan.tp)
        + plan.pp * (plan.dp * plan.tp)
        + plan.tp * (plan.dp * plan.tp)
        + n
    ) / n_groups
    rendezvous = n_groups * store.rendezvous_time(max(1, _round_half_up(avg_group_size)))
    if ordered:
        rendezvous /= ORDERED_RENDEZVOUS_PIPELINING

    bootstrap = NCCL_BOOTSTRAP_PER_RANK * (n_groups * avg_group_size) / n
    return InitBreakdown(
        store=store.name,
        ordered=ordered,
        world_size=n,
        n_groups=n_groups,
        barrier_count=barrier_count,
        barrier_time=barrier_time,
        rendezvous_time=rendezvous,
        nccl_bootstrap_time=bootstrap,
    )


def init_time_seconds(plan: ParallelPlan, store_name: str = "tcpstore", ordered: bool = False) -> float:
    """Convenience wrapper returning just the total."""
    store = STORE_CATALOG.get(store_name)
    if store is None:
        raise ValueError(f"unknown store {store_name!r} (have {sorted(STORE_CATALOG)})")
    return group_init_time(plan, store, ordered).total


def paper_sequence(plan: ParallelPlan) -> dict:
    """The three configurations the paper reports, in order."""
    return {
        "tcpstore_naive": group_init_time(plan, TCP_STORE, ordered=False).total,
        "redis_naive": group_init_time(plan, REDIS_STORE, ordered=False).total,
        "redis_ordered": group_init_time(plan, REDIS_STORE, ordered=True).total,
    }

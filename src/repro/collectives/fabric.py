"""Flow-level collective cost backend (§3.6).

The alpha-beta models in :mod:`repro.collectives.primitives` price a
collective from a single bandwidth/latency pair, blind to where the
ranks actually sit.  This backend expands a ring collective into its
per-step flow set, routes every neighbour-pair flow over the
:class:`~repro.network.topology.ClosFabric` with deterministic ECMP
hashing, computes the step completion time under max-min fair link
sharing (:func:`repro.network.flow.max_min_fair_rates`), and applies a
PFC pause/retransmit penalty to flows whose path crosses an
oversubscribed uplink — so same-ToR placement, port splitting and ECMP
hash conflicts show up in collective *prices*, not just in standalone
network studies.

On an uncongested single-pod placement the fabric price degenerates
exactly to the alpha-beta model: every neighbour path is
nic -> ToR -> nic (two 1 us links) and :data:`RING_SOFTWARE_LATENCY`
tops the per-step latency up to
:data:`~repro.collectives.primitives.INTER_NODE_LATENCY`, while each
NIC-bound flow owns its links and runs at
``nic_rate * cc_efficiency`` — the same bandwidth the analytic model
charges for a same-pod ring.  Cross-pod rings pick up the extra switch
hops, ECMP link sharing, and PFC penalties on top.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..exec.memo import get_cache
from ..network.flow import Flow, max_min_fair_rates
from ..network.link import Link
from ..network.topology import ClosFabric
from .primitives import COST_BACKENDS, DEFAULT_CC_EFFICIENCY, validate_backend

__all__ = [
    "COST_BACKENDS",
    "DEFAULT_PFC_PENALTY",
    "FabricCollectiveCost",
    "FabricCostModel",
    "PfcPenaltyModel",
    "RING_SOFTWARE_LATENCY",
    "RoutedStepCost",
    "fabric_collective_cost",
    "price_routed_step",
    "routed_step_cost",
    "validate_backend",
]

# Software/launch overhead added to every ring step.  Chosen so that a
# clean intra-pod path (two 1 us NIC<->ToR links) lands exactly on the
# analytic model's INTER_NODE_LATENCY of 12 us — which is what makes the
# fabric backend degenerate to the alpha-beta cost on a single-ToR group.
RING_SOFTWARE_LATENCY = 10e-6


@dataclass(frozen=True)
class PfcPenaltyModel:
    """Pause/retransmit derating for flows crossing oversubscribed links.

    When the offered load on a link exceeds its capacity, PFC back-
    pressure pauses the upstream senders; the paper's NCCL retransmit
    tuning (§3.6) bounds the damage but cannot remove it.  The model is
    deliberately coarse: a pause fraction growing linearly in the
    oversubscription beyond 1.0 (capped), plus one retransmit latency
    charged to any paused flow.  Frozen (hashable) so it can key the
    fabric memo cache.
    """

    pause_per_excess: float = 0.08  # pause fraction per unit oversubscription
    max_pause_fraction: float = 0.5
    retransmit_latency: float = 100e-6  # timeout + replay on a paused path

    def __post_init__(self) -> None:
        if self.pause_per_excess < 0:
            raise ValueError("pause_per_excess must be >= 0")
        if not 0 <= self.max_pause_fraction < 1:
            raise ValueError("max_pause_fraction must be in [0, 1)")
        if self.retransmit_latency < 0:
            raise ValueError("retransmit_latency must be >= 0")

    def pause_fraction(self, oversubscription: float) -> float:
        """Fraction of time a flow is XOFF-paused at the given load ratio."""
        if oversubscription <= 1.0:
            return 0.0
        return min(self.max_pause_fraction, self.pause_per_excess * (oversubscription - 1.0))


DEFAULT_PFC_PENALTY = PfcPenaltyModel()


@dataclass(frozen=True)
class RoutedStepCost:
    """Routing outcome of one ring step (all pair transfers concurrent).

    ``utilization`` and ``oversubscription`` are derived from the
    *effective* rates actually charged to the transfers — after
    congestion-control efficiency and PFC pause derating — so the
    ``network``-lane gauges report realized link load, not the
    pre-derate fair-share allocation.
    """

    duration: float  # slowest flow's completion time
    n_flows: int  # inter-node flows (same-host pairs are skipped)
    max_link_load: int  # flows sharing the most-loaded link
    utilization: float  # worst link's effective-rate utilization
    oversubscription: float  # worst effective offered-load / capacity (0 if unbounded demand)
    paused_flows: int  # flows paying a PFC penalty
    slowest_flow: int  # index of the flow setting the duration


@dataclass(frozen=True)
class FabricCollectiveCost:
    """A fabric-priced collective with its routing diagnostics."""

    kind: str
    size: float
    n_ranks: int
    n_steps: int
    step: RoutedStepCost  # identical steps: one routing outcome
    time: float

    @property
    def effective_bandwidth(self) -> float:
        """Realized per-NIC goodput: bytes each rank moves / total time."""
        if self.time <= 0.0 or self.n_ranks == 0:
            return float("inf")
        return self.n_steps * (self.size / self.n_ranks) / self.time


def routed_step_cost(
    paths: Sequence[Sequence[Link]],
    segment_bytes: float,
    demand: Optional[float] = None,
    software_latency: float = RING_SOFTWARE_LATENCY,
    cc_efficiency: float = 1.0,
    penalty: Optional[PfcPenaltyModel] = None,
) -> RoutedStepCost:
    """Completion time of one ring step whose pair transfers use ``paths``.

    Every non-empty path becomes one flow (empty paths are same-host
    pairs, priced elsewhere as NVLink traffic); flows share links
    max-min fairly.  ``demand`` caps each flow at its NIC line rate
    (None = unbounded, the event runtime's historical behaviour — PFC
    penalties then never apply, since oversubscription is undefined).
    The step ends when the slowest flow finishes.
    """
    if segment_bytes < 0:
        raise ValueError("segment_bytes must be non-negative")
    if not 0 < cc_efficiency <= 1:
        raise ValueError("cc_efficiency must be in (0, 1]")
    per_flow_demand = float("inf") if demand is None else demand
    flows = [
        Flow(flow_id=i, path=list(path), demand=per_flow_demand)
        for i, path in enumerate(paths)
        if path
    ]
    if not flows:
        return RoutedStepCost(software_latency, 0, 0, 0.0, 0.0, 0, 0)
    max_min_fair_rates(flows)
    return price_routed_step(
        flows,
        segment_bytes,
        demand=demand,
        software_latency=software_latency,
        cc_efficiency=cc_efficiency,
        penalty=penalty,
    )


def price_routed_step(
    flows: Sequence[Flow],
    segment_bytes: float,
    demand: Optional[float] = None,
    software_latency: float = RING_SOFTWARE_LATENCY,
    cc_efficiency: float = 1.0,
    penalty: Optional[PfcPenaltyModel] = None,
) -> RoutedStepCost:
    """Step cost of already-solved flows (rates assigned, paths non-empty).

    Split out of :func:`routed_step_cost` so callers that keep a live
    :class:`~repro.network.flow.IncrementalMaxMinSolver` (the event
    runtime, which reuses one allocation across identical ring steps)
    can price steps without re-solving max-min sharing each time.
    """
    if not flows:
        return RoutedStepCost(software_latency, 0, 0, 0.0, 0.0, 0, 0)

    load: Dict[Link, int] = {}
    for flow in flows:
        for link in flow.path:
            load[link] = load.get(link, 0) + 1
    max_link_load = max(load.values())

    # PFC pauses trigger on the *offered* wire load (what the NICs try
    # to push); the realized per-flow goodput then derates by both the
    # congestion-control efficiency and the pause fraction.
    duration, slowest, paused = 0.0, 0, 0
    effective: Dict[Link, float] = {}
    offered: Dict[Link, float] = {}
    for flow in flows:
        ratio = 0.0
        if demand is not None:
            ratio = max(load[l] * demand / l.bandwidth for l in flow.path)
        pause = penalty.pause_fraction(ratio) if penalty is not None else 0.0
        if pause > 0.0:
            paused += 1
        rate = flow.rate * cc_efficiency * (1.0 - pause)
        for link in flow.path:
            effective[link] = effective.get(link, 0.0) + rate
            if demand is not None:
                offered[link] = offered.get(link, 0.0) + demand * cc_efficiency * (1.0 - pause)
        latency = sum(l.latency for l in flow.path) + software_latency
        if pause > 0.0 and penalty is not None:
            latency += penalty.retransmit_latency
        t = (segment_bytes / rate if segment_bytes > 0 else 0.0) + latency
        if t > duration:
            duration, slowest = t, flow.flow_id
    utilization = max(min(1.0, effective[l] / l.bandwidth) for l in load)
    oversubscription = max(
        (value / link.bandwidth for link, value in offered.items()), default=0.0
    )
    return RoutedStepCost(
        duration=duration,
        n_flows=len(flows),
        max_link_load=max_link_load,
        utilization=utilization,
        oversubscription=oversubscription,
        paused_flows=paused,
        slowest_flow=slowest,
    )


@dataclass
class FabricCostModel:
    """Prices ring collectives by routing their flows over a fabric.

    Each ring step of an n-node collective is n neighbour-pair flows
    (same-host pairs skipped), each demanding the NIC line rate, routed
    on rail ``rail`` and shared max-min across the CLOS links; steps are
    identical, so one routing prices the whole collective.
    """

    fabric: ClosFabric
    rail: int = 0
    cc_efficiency: float = DEFAULT_CC_EFFICIENCY
    software_latency: float = RING_SOFTWARE_LATENCY
    penalty: Optional[PfcPenaltyModel] = DEFAULT_PFC_PENALTY
    nic_rate: Optional[float] = None  # per-flow demand; fabric's NIC rate if None

    def __post_init__(self) -> None:
        if not 0 < self.cc_efficiency <= 1:
            raise ValueError("cc_efficiency must be in (0, 1]")
        if not 0 <= self.rail < self.fabric.rails:
            raise ValueError(f"rail {self.rail} outside 0..{self.fabric.rails - 1}")
        if self.nic_rate is None:
            self.nic_rate = self.fabric.nic_rate

    def ring_paths(self, nodes: Sequence[int]) -> List[List[Link]]:
        """ECMP-resolved neighbour-pair paths of the ring over ``nodes``."""
        n = len(nodes)
        paths: List[List[Link]] = []
        for i, src in enumerate(nodes):
            dst = nodes[(i + 1) % n]
            if src == dst:
                paths.append([])
            else:
                paths.append(self.fabric.path(src, dst, rail=self.rail, flow_id=i))
        return paths

    def step_cost(self, nodes: Sequence[int], segment_bytes: float) -> RoutedStepCost:
        return routed_step_cost(
            self.ring_paths(nodes),
            segment_bytes,
            demand=self.nic_rate,
            software_latency=self.software_latency,
            cc_efficiency=self.cc_efficiency,
            penalty=self.penalty,
        )

    def collective_cost(
        self,
        kind: str,
        size: float,
        nodes: Sequence[int],
        hub=None,
        rank: int = 0,
        start: float = 0.0,
    ) -> FabricCollectiveCost:
        """Price one ring collective over ``nodes`` (fabric node per rank).

        With a :class:`~repro.observability.TelemetryHub` as ``hub`` the
        collective lands as a routed-flow span on the ``collectives``
        lane and its bottleneck-link utilization as gauges on the
        ``network`` lane.
        """
        if size < 0:
            raise ValueError("size must be non-negative")
        nodes = tuple(nodes)
        n = len(nodes)
        if n < 1:
            raise ValueError("need at least one node")
        if kind in ("all_gather", "reduce_scatter"):
            n_steps = n - 1
        elif kind == "all_reduce":
            n_steps = 2 * (n - 1)
        else:
            raise ValueError(
                "fabric backend prices ring collectives "
                f"(all_gather/reduce_scatter/all_reduce), not {kind!r}"
            )
        if n == 1 or size == 0:
            cost = FabricCollectiveCost(
                kind, float(size), n, 0, RoutedStepCost(0.0, 0, 0, 0.0, 0.0, 0, 0), 0.0
            )
        else:
            step = self.step_cost(nodes, size / n)
            cost = FabricCollectiveCost(
                kind, float(size), n, n_steps, step, n_steps * step.duration
            )
        self._emit(hub, cost, rank, start)
        return cost

    def p2p_time(self, size: float, src_node: int, dst_node: int, flow_id: int = 0) -> float:
        """One routed send/recv between two nodes (pipeline activations)."""
        if size < 0:
            raise ValueError("size must be non-negative")
        if src_node == dst_node:
            return 0.0
        path = self.fabric.path(src_node, dst_node, rail=self.rail, flow_id=flow_id)
        return routed_step_cost(
            [path],
            size,
            demand=self.nic_rate,
            software_latency=self.software_latency,
            cc_efficiency=self.cc_efficiency,
            penalty=self.penalty,
        ).duration

    def _emit(self, hub, cost: FabricCollectiveCost, rank: int, start: float) -> None:
        if hub is None:
            return
        step = cost.step
        hub.span(
            "collectives",
            f"fabric:{cost.kind}",
            rank,
            start,
            start + cost.time,
            stream="fabric",
            bytes=cost.size,
            n_ranks=cost.n_ranks,
            steps=cost.n_steps,
            n_flows=step.n_flows,
            max_link_load=step.max_link_load,
            paused_flows=step.paused_flows,
        )
        hub.count("collectives", "fabric_priced", 1, kind=cost.kind)
        # Rail index doubles as the gauge's rank/tid: one series per rail.
        hub.sample(
            "network", "fabric_link_utilization", t=start, value=step.utilization,
            rank=self.rail,
        )
        hub.sample(
            "network", "fabric_max_link_load", t=start, value=float(step.max_link_load),
            rank=self.rail,
        )


def fabric_collective_cost(
    kind: str,
    size: float,
    nodes: Tuple[int, ...],
    fabric: ClosFabric,
    rail: int = 0,
    cc_efficiency: float = DEFAULT_CC_EFFICIENCY,
    software_latency: float = RING_SOFTWARE_LATENCY,
    penalty: Optional[PfcPenaltyModel] = DEFAULT_PFC_PENALTY,
    nic_rate: Optional[float] = None,
    hub=None,
) -> FabricCollectiveCost:
    """Memoized fabric pricing — the ``backend="fabric"`` entry point.

    Keyed by every pricing parameter plus
    :meth:`~repro.network.topology.ClosFabric.fingerprint`, so two
    identically-configured healthy fabrics share entries while a
    degraded or re-built fabric never reuses them.  On a healthy fabric
    the node group is first canonicalized
    (:meth:`~repro.network.topology.ClosFabric.canonical_node_offsets`):
    groups that differ only by a within-pod offset route link-for-link
    isomorphic paths, so all DP rings with the same placement shape
    share one memo entry and one routed price.  ``hub`` is not part of
    the key, and telemetry is emitted only when the price is computed
    fresh — a memo hit is not a new routed collective.
    """
    cache = get_cache("fabric_collective_cost")
    fingerprint = fabric.fingerprint()
    nodes = tuple(nodes)
    if nodes and not fabric.degraded():
        nodes = fabric.canonical_node_offsets(nodes)
    key = (
        kind,
        float(size),
        nodes,
        rail,
        cc_efficiency,
        software_latency,
        penalty,
        nic_rate,
        fingerprint,
    )
    if key in cache.store:
        cache.hits += 1
        return cache.get(key)
    cache.misses += 1
    model = FabricCostModel(
        fabric,
        rail=rail,
        cc_efficiency=cc_efficiency,
        software_latency=software_latency,
        penalty=penalty,
        nic_rate=nic_rate,
    )
    result = model.collective_cost(kind, size, nodes, hub=hub)
    cache.put(key, result)
    return result

"""Collective communication: cost primitives, fabric-aware groups, init."""

from .groups import DEFAULT_CC_EFFICIENCY, GroupCommModel, build_comm_model
from .hierarchical import HierarchicalCost, flat_all_reduce, hierarchical_all_reduce, hierarchical_speedup
from .init import (
    InitBreakdown,
    count_groups,
    group_init_time,
    init_time_seconds,
    paper_sequence,
)
from .kvstore import (
    REDIS_STORE,
    STORE_CATALOG,
    TCP_STORE,
    SimulatedKvServer,
    StoreModel,
    simulated_barrier_time,
)
from .primitives import (
    CollectiveCost,
    all_to_all,
    collective_cost,
    point_to_point,
    ring_all_gather,
    ring_all_reduce,
    ring_reduce_scatter,
    tree_broadcast,
)

__all__ = [
    "CollectiveCost",
    "DEFAULT_CC_EFFICIENCY",
    "GroupCommModel",
    "HierarchicalCost",
    "flat_all_reduce",
    "hierarchical_all_reduce",
    "hierarchical_speedup",
    "InitBreakdown",
    "REDIS_STORE",
    "STORE_CATALOG",
    "SimulatedKvServer",
    "StoreModel",
    "TCP_STORE",
    "all_to_all",
    "build_comm_model",
    "collective_cost",
    "count_groups",
    "group_init_time",
    "init_time_seconds",
    "paper_sequence",
    "point_to_point",
    "ring_all_gather",
    "ring_all_reduce",
    "ring_reduce_scatter",
    "simulated_barrier_time",
    "tree_broadcast",
]

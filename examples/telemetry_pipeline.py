#!/usr/bin/env python
"""End-to-end telemetry: one faulty production run, one unified trace.

Instruments every subsystem into a single :class:`TelemetryHub` — a
training burst (per-segment spans, MFU gauges), a ring reduce-scatter
over a Clos fabric slice, a congestion experiment, then a fault-injected
production week with the two-tier monitors attached live — and dumps one
Perfetto-loadable Chrome-trace document plus a JSONL metrics sidecar.

    python examples/telemetry_pipeline.py [trace.json] [weeks]

Load the JSON at https://ui.perfetto.dev: each subsystem is its own
process lane (training, collectives, network, fault, monitor), health
findings appear as instant markers at their simulated fire time, and
gauges render as counter tracks.
"""

import sys

import numpy as np

from repro.collectives.runtime import RingCollectiveRuntime
from repro.core.features import MEGASCALE_ISO_BATCH
from repro.fault import CheckpointPlanner, CorrelatedFaultInjector, ProductionRun
from repro.hardware import Cluster
from repro.model import GPT_175B
from repro.network.congestion import simulate_bottleneck
from repro.network.topology import ClosFabric
from repro.observability import TelemetryHub, lane_summary
from repro.parallel import plan_for_gpus
from repro.training import TrainingRunner


def main() -> None:
    output = sys.argv[1] if len(sys.argv) > 1 else "telemetry.json"
    weeks = float(sys.argv[2]) if len(sys.argv) > 2 else 1.0
    seed = 1

    hub = TelemetryHub(job_name="175B production")
    plan = plan_for_gpus(1024, tp=8, pp=8, vpp=6)

    # 1. Compute side: two instrumented iterations land forward/backward/
    #    reduce-scatter/optimizer spans and MFU gauges on the training lane.
    runner = TrainingRunner(
        GPT_175B, plan, MEGASCALE_ISO_BATCH, global_batch=768, seed=seed
    )
    runner.run(2, hub=hub)

    # 2. One DP-shard's gradient reduce-scatter over a real fabric slice.
    fabric = ClosFabric(n_nodes=8, nodes_per_pod=8)
    runtime = RingCollectiveRuntime(fabric, node_of_rank=list(range(8)))
    runtime.run("reduce_scatter", 2 * GPT_175B.n_params / (plan.tp * plan.pp), hub=hub)

    # 3. Network posture: link-utilization and queue gauges from the
    #    congestion model on the network lane.
    simulate_bottleneck("megascale", n_flows=8, duration=0.01, hub=hub)

    # 4. The faulty production run itself.  Correlated faults (rack power,
    #    ToR, leaf links) hit the cluster; every incident emits a fault
    #    instant, detect/recover spans, and live monitor verdicts.
    n_nodes = 128
    run = ProductionRun(
        plan,
        CorrelatedFaultInjector(n_nodes=n_nodes, rng=np.random.default_rng(seed)),
        planner=CheckpointPlanner(model=GPT_175B, plan=plan),
        rng=np.random.default_rng(seed),
        cluster=Cluster.build(n_nodes=n_nodes, n_spares=4),
        hub=hub,
    )
    result = run.run(duration=weeks * 7 * 86400.0)

    n_events, metrics_path = hub.save(output)
    print(f"production          : {result.restarts} restarts over {weeks:g} week(s)")
    print(f"health findings     : {len(run.monitors.findings)}")
    print(f"trace               : {output} ({n_events} events)")
    print(f"metrics             : {metrics_path}")
    print()
    print(f"{'pid':>4s} {'lane':<28s} {'spans':>6s} {'instants':>9s} {'counters':>9s}")
    for lane in lane_summary(hub.to_chrome_trace()):
        print(
            f"{lane['pid']:>4d} {lane['name']:<28s} {lane['spans']:>6d} "
            f"{lane['instants']:>9d} {lane['counters']:>9d}"
        )
    print("\nopen https://ui.perfetto.dev and load the trace file.")


if __name__ == "__main__":
    main()

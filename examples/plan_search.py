#!/usr/bin/env python
"""Bound-and-prune plan search: exact tuning without brute force.

Runs the tuner's search twice over the same candidate space — brute
force and bound-and-prune — shows that the leaderboards are
bit-identical while the pruned search prices a fraction of the
candidates, then demonstrates the cross-run persistent cache answering a
repeat search without a single engine call.

    python examples/plan_search.py [model] [n_gpus] [batch]
"""

import os
import sys
import tempfile
import time

from repro.exec import PersistentMemo
from repro.model import MODEL_CATALOG
from repro.parallel import search_plans


def timed_search(model, n_gpus, batch, **kwargs):
    t0 = time.perf_counter()
    result = search_plans(model, n_gpus, batch, top_k=5, **kwargs)
    return result, time.perf_counter() - t0


def main() -> None:
    model_name = sys.argv[1] if len(sys.argv) > 1 else "gpt-175b"
    n_gpus = int(sys.argv[2]) if len(sys.argv) > 2 else 1024
    batch = int(sys.argv[3]) if len(sys.argv) > 3 else 768
    model = MODEL_CATALOG[model_name]

    print(f"searching plans for {model_name} on {n_gpus} GPUs at batch {batch}\n")

    brute, brute_s = timed_search(model, n_gpus, batch, exhaustive=True)
    pruned, pruned_s = timed_search(model, n_gpus, batch)

    print("-- brute force " + "-" * 50)
    print(f"{brute.stats.evaluated} engine evaluations in {brute_s:.2f}s")
    print()
    print("-- bound-and-prune " + "-" * 46)
    print(pruned.stats.describe())
    print(f"wall clock {pruned_s:.2f}s")
    print()

    match = "identical" if pruned.top == brute.top else "DIVERGED (bug!)"
    print(f"top-5 leaderboards: {match}")
    for i, result in enumerate(pruned.top, 1):
        print(f"  #{i}  {result.describe()}")
    print()
    print("incumbent trajectory (priced, best, k-th best):")
    for priced, best, kth in pruned.stats.incumbent:
        print(f"  after {priced:>3d} priced: best {best:.3f}s, k-th {kth:.3f}s")

    # Cross-run persistence: the second invocation prices nothing.
    cache_path = os.path.join(tempfile.mkdtemp(), "plan-search.pkl")
    with PersistentMemo(cache_path) as memo:
        search_plans(model, n_gpus, batch, top_k=5, cache=memo)
    with PersistentMemo(cache_path) as memo:
        rerun, rerun_s = timed_search(model, n_gpus, batch, cache=memo)
    print()
    print(
        f"repeat search with persistent cache: {rerun.stats.evaluated} engine "
        f"evaluations, {rerun.stats.persistent_hits} disk hits, {rerun_s:.2f}s"
    )


if __name__ == "__main__":
    main()

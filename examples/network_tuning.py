#!/usr/bin/env python
"""Network tuning walkthrough: ECMP, congestion control, retransmits (§3.6).

    python examples/network_tuning.py
"""

from repro.network import (
    ADAPTIVE_NIC,
    DEFAULT_NCCL,
    TUNED_NCCL,
    ClosFabric,
    expected_conflict_stats,
    port_split_benefit,
    simulate_bottleneck,
)


def main() -> None:
    print("=== ECMP hash conflicts at the ToR uplinks ===")
    for flows in (16, 32, 48, 64):
        unsplit = expected_conflict_stats(flows, 32, uplink_to_flow_rate=1.0, trials=100)
        split = expected_conflict_stats(flows, 32, uplink_to_flow_rate=2.0, trials=100)
        print(
            f"{flows:>3d} flows: unsplit {unsplit.mean_flow_throughput:.1%} "
            f"-> split {split.mean_flow_throughput:.1%} "
            f"(benefit {port_split_benefit(flows, 32, trials=100):.2f}x)"
        )

    fabric = ClosFabric(n_nodes=256)
    print(f"\nsame-ToR scheduling: {fabric.hops(0, 63)}-hop paths inside a pod, "
          f"{fabric.hops(0, 200)}-hop across pods")

    print("\n=== congestion control under incast ===")
    for n_flows in (4, 16, 32):
        print(f"-- {n_flows} flows into one 50 GB/s bottleneck --")
        for algo in ("dcqcn", "swift", "megascale"):
            r = simulate_bottleneck(algo, n_flows=n_flows)
            print(
                f"  {algo:>10s}: goodput {r.goodput_fraction:6.1%}  "
                f"queue {r.mean_queue_bytes / 1e6:6.2f} MB  "
                f"PFC {r.pfc_pause_fraction:5.1%}  "
                f"HoL victim {r.hol_victim_throughput:6.1%}"
            )

    print("\n=== retransmit policy vs link flaps ===")
    for flap in (0.2, 0.8, 3.0, 6.0):
        cells = []
        for name, policy in (("default", DEFAULT_NCCL), ("tuned", TUNED_NCCL), ("adap", ADAPTIVE_NIC)):
            cells.append(
                f"{name}: {policy.recovery_time(flap):5.2f}s"
                if policy.survives(flap)
                else f"{name}:  DEAD"
            )
        print(f"  flap {flap:4.1f}s  " + "   ".join(cells))
    print("\nlesson (paper §6.3): set the NCCL timeout explicitly above the flap")
    print("duration, enable adap_retrans, and fix the cables.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Straggler hunt: find slow machines and hung GPUs with the §5 tools.

Plants a few degraded hosts in a simulated fleet, collects CUDA-event
timings, and walks the paper's playbook: heat-map outlier detection, the
3D-parallel dependency view of a hang, and timeout-log localization.

    python examples/straggler_hunt.py
"""

import numpy as np

from repro.observability import (
    CudaEventTimer,
    DependencyGraph,
    analyze,
    localize_hang,
    rank_view,
    render,
    render_ascii,
    simulate_timeout_logs,
    straggler_machines,
)
from repro.parallel import ParallelPlan


def main() -> None:
    plan = ParallelPlan(dp=8, tp=8, pp=4, vpp=2)  # 256 ranks
    rng = np.random.default_rng(3)

    # --- act 1: the heat map finds computational stragglers ----------------
    slow_hosts = {5, 21}
    timer = CudaEventTimer()
    for step in range(12):
        for rank in range(plan.world_size):
            slowdown = 1.10 if rank // 8 in slow_hosts else 1.0
            timer.record(rank, step, "forward", 0.1 * slowdown + rng.normal(0, 0.001))
    result = analyze(timer, "forward")
    print(render_ascii(result, width=64, label="forward-latency heat map (256 ranks)"))
    print(f"flagged machines: {straggler_machines(result)} (planted: {sorted(slow_hosts)})\n")

    # --- act 2: a GPU hangs in NCCL; the 3D view localizes it --------------
    faulty_rank = 77
    print("--- NCCL hang: 3D-parallel view of the suspect ---")
    print(render(rank_view(plan, faulty_rank, error="no timeout log emitted")))
    graph = DependencyGraph(plan)
    affected = graph.affected_by(faulty_rank)
    print(f"\nfirst-wave stalls: tensor={affected['tensor'][:4]}... "
          f"pipeline={affected['pipeline']}")

    logs = simulate_timeout_logs(plan, faulty_ranks=[faulty_rank])
    diagnosis = localize_hang(plan, logs)
    print(f"timeout-log localization: hung ranks {sorted(diagnosis.hung_ranks)} "
          f"on nodes {sorted(diagnosis.hung_nodes)} "
          f"(consistent: {diagnosis.consistent})")
    print("-> block the node, let Kubernetes replace it, resume from checkpoint.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Strong-scaling study: how MFU and speedup evolve from 256 to 12,288 GPUs.

Reproduces the sweep behind Table 2 and additionally prints *why* each
configuration loses MFU (bubbles vs exposed communication vs data
stalls), which the paper discusses but does not tabulate.

    python examples/strong_scaling_study.py
"""

from repro import compare, job_175b


def main() -> None:
    print(f"{'GPUs':>6s} {'batch':>6s} {'MT MFU':>7s} {'MS MFU':>7s} {'speedup':>8s}  "
          f"{'bubbles':>8s} {'dp-exp':>7s} {'data':>6s}")
    for n_gpus, batch in [
        (256, 768),
        (512, 768),
        (1024, 768),
        (3072, 6144),
        (6144, 6144),
        (12288, 6144),
    ]:
        result = compare(job_175b(n_gpus=n_gpus, global_batch=batch))
        ms = result.megascale.details
        print(
            f"{n_gpus:>6d} {batch:>6d} {result.baseline.mfu:>6.1%} "
            f"{result.megascale.mfu:>6.1%} {result.speedup:>7.2f}x  "
            f"{ms.bubble_fraction:>7.1%} {ms.dp_exposed:>6.2f}s {ms.data_stall:>5.2f}s"
        )

    print("\nReading the table:")
    print(" * at fixed batch, more GPUs -> fewer micro-batches per pipeline ->")
    print("   larger bubble fraction and relatively more exposed DP time;")
    print(" * the Megatron-LM column additionally pays the straggler lottery")
    print("   (no diagnostics/eviction), so the speedup widens with scale.")


if __name__ == "__main__":
    main()

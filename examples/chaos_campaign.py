#!/usr/bin/env python
"""A Monte Carlo chaos campaign: distributions, not anecdotes.

One seeded production run answers "what happened under seed 0"; a
campaign answers "what is the p99 effective training rate over a week
at this scale, with a confidence interval".  This example runs a
256-seed, one-week campaign at 256 nodes, prints the distribution
table, then shows what the single-seed view would have missed.

Run:  PYTHONPATH=src python examples/chaos_campaign.py
"""

import time

from repro.montecarlo import CampaignSpec, run_campaign

spec = CampaignSpec(n_nodes=256)
seeds = range(256)

started = time.perf_counter()
result = run_campaign("chaos", seeds=seeds, weeks=1.0, spec=spec)
elapsed = time.perf_counter() - started

print(result.describe())
print()
print(f"{len(result.seeds)} simulated weeks in {elapsed:.2f}s "
      f"({1000 * elapsed / len(result.seeds):.1f} ms per seed)")
print()

# What a single seed hides: the spread of the headline metric.
rates = result.metric_values("effective_rate")
summary = result.metrics["effective_rate"]
print(f"effective rate: seed 0 alone says {rates[0]:.1%}")
print(f"  across {summary.n} seeds: mean {summary.mean:.1%} "
      f"(95% CI [{summary.ci_low:.1%}, {summary.ci_high:.1%}]), "
      f"worst {summary.min:.1%}")

# The incident mix, pooled over every seed's recovery log.
worst_kind = max(
    (k for k in result.incident_totals if f"downtime:{k}" in
     result.incident_distributions),
    key=lambda k: result.incident_distributions[f"downtime:{k}"].mean,
)
dist = result.incident_distributions[f"downtime:{worst_kind}"]
print(f"costliest fault kind: {worst_kind} "
      f"({dist.count} incidents, mean downtime {dist.mean / 60:.0f} min)")

# The whole campaign is a deterministic document: same seeds -> same
# bytes, whether run serially, in parallel, or from the naive
# reference path.  Uncomment to persist it:
# with open("campaign.json", "w") as fh:
#     fh.write(result.to_json())

#!/usr/bin/env python
"""Export a pipeline execution trace to Chrome trace-event format.

Runs one iteration's pipeline phase with span recording and writes a
``chrome://tracing`` / Perfetto-loadable JSON file — the practical
version of the paper's Figure 8 timeline UI.

    python examples/trace_export.py [output.json]
"""

import sys

from repro.core.features import MEGASCALE_ISO_BATCH
from repro.model import GPT_175B
from repro.observability import DistributedTimeline, dump_chrome_trace
from repro.parallel import plan_for_gpus
from repro.sim import TraceRecorder
from repro.training import IterationEngine


def main() -> None:
    output = sys.argv[1] if len(sys.argv) > 1 else "pipeline_trace.json"
    plan = plan_for_gpus(256, tp=8, pp=8, vpp=2, micro_batch=1)
    engine = IterationEngine(GPT_175B, plan, MEGASCALE_ISO_BATCH)
    trace = TraceRecorder()
    makespan, busy = engine.pipeline_makespan(m=16, trace=trace)

    count = dump_chrome_trace(trace, output, job_name="175B pipeline (16 micro-batches)")
    timeline = DistributedTimeline.from_trace(trace)
    print(f"pipeline makespan {makespan * 1e3:.0f} ms, busiest stage {busy * 1e3:.0f} ms")
    print(f"wrote {count} trace events to {output}")
    print("open chrome://tracing (or https://ui.perfetto.dev) and load the file.")
    print("\nASCII preview:")
    print(timeline.render_ascii(width=72))


if __name__ == "__main__":
    main()

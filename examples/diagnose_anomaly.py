#!/usr/bin/env python
"""Automated root-cause attribution over a telemetry trace (§5).

Runs an injected-fault training scenario (a rack of slow GPUs, a ToR
switch blast, an ECMP hash collision, ...), captures the full telemetry
session, then hands it to the diagnosis engine — which decomposes each
iteration against the analytic expectation, runs streaming detectors
over the gauge series, and correlates the anomaly windows with fault
events to emit a ranked, machine-readable report.

    python examples/diagnose_anomaly.py [scenario] [seed]

Scenarios: clean, straggler, tor-blast, ecmp-collision, preemption,
data-stall.  Equivalent CLI: `repro diagnose --scenario straggler`.
"""

import sys

from repro.observability import diagnose_files, diagnose_hub
from repro.observability.diagnosis import SCENARIOS, TRUE_CAUSE, run_scenario


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "straggler"
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 0
    if name not in SCENARIOS:
        raise SystemExit(f"unknown scenario {name!r}; choose from {', '.join(SCENARIOS)}")

    print(f"running scenario {name!r} (seed {seed}) and diagnosing the live hub...\n")
    hub = run_scenario(name, seed=seed)
    report = diagnose_hub(hub)
    print(report.describe())

    truth = TRUE_CAUSE[name]
    top = report.top()
    if truth is None:
        verdict = "clean run, zero findings" if report.clean else "FALSE POSITIVE"
    else:
        verdict = "correct" if top and top.cause == truth else "MISSED"
    print(f"\ninjected cause: {truth or '(none)'} -> top-1 attribution {verdict}")

    # The same diagnosis works offline from a saved trace + metrics sidecar.
    n_events, metrics_path = hub.save("diagnose_session.json")
    offline = diagnose_files("diagnose_session.json")
    assert offline.to_json() == report.to_json()
    print(f"saved {n_events} events -> diagnose_session.json (+ {metrics_path})")
    print("offline diagnosis of the saved trace is byte-identical to the live one")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Multi-tenant chaos: two jobs, one shared cluster, one spare.

Runs the same seeded correlated-fault timeline under both arbitration
policies and prints what each tenant lived through — who won the last
spare when a rack-PSU incident injured both jobs at once, who was
preempted, who shrank, and what it all cost in cluster-wide goodput.

    python examples/multi_tenant_chaos.py [seed] [days]
"""

import sys
from collections import Counter

from repro.scheduler import run_policy


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 0
    days = float(sys.argv[2]) if len(sys.argv) > 2 else 3.0

    print(f"=== multi-tenant chaos: seed {seed}, {days:g} days ===\n")
    reports = {}
    for policy in ("priority", "fifo"):
        report, scheduler = run_policy(seed, policy, days=days)
        reports[policy] = report
        print(report.describe())
        actions = Counter(d.action for d in report.decisions)
        print("decisions:", ", ".join(f"{k}×{v}" for k, v in sorted(actions.items())))
        assert scheduler.pool.consistent(), "spare ledger must balance"
        print()

    arbitrated = reports["priority"].mean_goodput
    naive = reports["fifo"].mean_goodput
    print(f"arbitrating scheduler : {arbitrated:.3f} goodput")
    print(f"naive FIFO baseline   : {naive:.3f} goodput")
    print(f"improvement           : {arbitrated / naive - 1:+.1%}")

    # The arbitration history of the decisive incidents: every time the
    # pool could not cover a claim batch, and what the loser did next.
    print("\ncontended incidents (priority policy):")
    for decision in reports["priority"].decisions:
        if decision.action in ("deny", "preempt", "shrink", "stall"):
            detail = ", ".join(f"{k}={v}" for k, v in decision.detail)
            print(f"  t={decision.time / 3600:7.2f}h {decision.action:<8s}"
                  f" {decision.job:<10s} {detail}")


if __name__ == "__main__":
    main()

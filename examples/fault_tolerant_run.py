#!/usr/bin/env python
"""Fault-tolerant production run: weeks of training with automatic recovery.

Simulates the Figure 11 scenario — a 12,288-GPU job under a realistic
fault process, with the robust training framework detecting, diagnosing
and recovering from each incident — and prints the operational report.

    python examples/fault_tolerant_run.py [weeks]
"""

import sys
from collections import Counter

import numpy as np

from repro.fault import CheckpointPlanner, FaultInjector, ProductionRun, catch_up_time
from repro.model import GPT_175B
from repro.parallel import plan_for_gpus


def main() -> None:
    weeks = float(sys.argv[1]) if len(sys.argv) > 1 else 3.0
    plan = plan_for_gpus(12288, tp=8, pp=8, vpp=6)
    injector = FaultInjector(n_nodes=1536, rng=np.random.default_rng(1))
    planner = CheckpointPlanner(model=GPT_175B, plan=plan)
    run = ProductionRun(plan, injector, planner=planner, rng=np.random.default_rng(1))

    result = run.run(duration=weeks * 7 * 86400.0)
    config = run.config

    print(f"=== {weeks:g}-week production run on 12,288 GPUs ===")
    print(f"completed iterations : {result.completed_iterations:,}")
    print(f"tokens trained       : {result.tokens_trained / 1e12:.2f}T")
    print(f"restarts             : {result.restarts}")
    print(f"auto-recovered       : {result.log.auto_fraction():.1%}")
    print(f"effective time rate  : {result.effective_rate(config.iteration_time):.1%}")
    print(f"mean downtime/fault  : {result.log.mean_downtime() / 60:.1f} min")
    print(f"catch-up budget      : {catch_up_time(config) / 60:.1f} min")

    print("\nfaults by kind:")
    by_kind = Counter(r.fault.kind.name for r in result.log.records)
    for kind, count in by_kind.most_common():
        print(f"  {kind:<14s} {count:>4d}")

    print("\nloss trajectory (restarts marked 'R'):")
    losses = [loss for _, loss, _ in result.loss_points]
    lo, hi = min(losses), max(losses)
    last_restarts = 0
    for tokens, loss, restarts in result.loss_points[:: max(1, len(result.loss_points) // 15)]:
        bar = int((loss - lo) / (hi - lo or 1) * 48)
        mark = "R" if restarts > last_restarts else " "
        last_restarts = restarts
        print(f"  {tokens / 1e12:5.2f}T |{'#' * bar:<48s}| {loss:.3f} {mark}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Quickstart: compare MegaScale against Megatron-LM on one training job.

Runs the simulated 175B-parameter job at a configurable scale and prints
the Table 2-style report plus the iteration-time breakdown.

    python examples/quickstart.py [n_gpus] [global_batch]
"""

import sys

from repro import compare, job_175b, render_table


def main() -> None:
    n_gpus = int(sys.argv[1]) if len(sys.argv) > 1 else 1024
    global_batch = int(sys.argv[2]) if len(sys.argv) > 2 else 768

    job = job_175b(n_gpus=n_gpus, global_batch=global_batch)
    print(f"model={job.model_spec.name}  plan: {job.plan().describe()}\n")

    result = compare(job)
    print(render_table([result.baseline, result.megascale]))
    print()
    print(result.summary())

    details = result.megascale.details
    print("\nMegaScale iteration breakdown:")
    print(f"  pipeline phase      {details.pipeline_time:8.3f} s")
    print(f"  data stall          {details.data_stall:8.3f} s")
    print(f"  exposed DP comm     {details.dp_exposed:8.3f} s")
    print(f"  optimizer step      {details.optimizer_time:8.3f} s")
    print(f"  pipeline bubbles    {details.bubble_fraction:8.2%}")
    print(f"  hidden DP traffic   {details.dp_total_comm - details.dp_exposed:8.3f} s")


if __name__ == "__main__":
    main()

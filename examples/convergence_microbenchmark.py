#!/usr/bin/env python
"""Convergence microbenchmark: PTB/SWA and LAMB at laptop scale (Fig. 10).

Trains a real (numpy) tiny transformer LM on a structured synthetic
corpus and compares the loss curves of the paper's algorithmic variants.

    python examples/convergence_microbenchmark.py [steps]
"""

import sys

from repro.optim import LmConfig, make_markov_corpus, train_lm


def sparkline(losses, width=40):
    lo, hi = min(losses), max(losses)
    span = (hi - lo) or 1.0
    glyphs = "█▇▆▅▄▃▂▁ "
    return "".join(
        glyphs[min(len(glyphs) - 1, int((l - lo) / span * (len(glyphs) - 1)))]
        for l in losses[:width]
    )


def main() -> None:
    steps = int(sys.argv[1]) if len(sys.argv) > 1 else 150
    corpus = make_markov_corpus(vocab_size=48, length=50_000, seed=3)
    base_cfg = LmConfig(vocab_size=48, d_model=48, n_heads=4, n_layers=2, seq_len=32)
    ptb_swa = LmConfig(
        vocab_size=48, d_model=48, n_heads=4, n_layers=2, seq_len=32,
        parallel_block=True, attention_window=16,
    )

    print(f"training 3 variants for {steps} steps each (real numpy backprop)...\n")
    runs = [
        train_lm(base_cfg, "adam", lr=3e-3, batch_size=8, n_steps=steps,
                 corpus=corpus, seed=5, label="baseline   (serial + full attention)"),
        train_lm(ptb_swa, "adam", lr=3e-3, batch_size=8, n_steps=steps,
                 corpus=corpus, seed=5, label="megascale  (parallel block + SWA)"),
        train_lm(base_cfg, "lamb", lr=8e-3, batch_size=32, n_steps=steps // 4,
                 corpus=corpus, seed=5, label="lamb @ 4x batch"),
    ]
    for run in runs:
        print(f"{run.label:<40s} {sparkline(run.losses)}  "
              f"{run.losses[0]:.2f} -> {run.final_loss:.2f}")
    print("\nFigure 10's claim at this scale: the variants' curves track the")
    print("baseline — the optimizations are free of convergence cost.")


if __name__ == "__main__":
    main()

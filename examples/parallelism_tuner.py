#!/usr/bin/env python
"""Auto-tune 3D parallelism for a model and GPU budget.

Enumerates feasible (tp, pp, vpp, micro-batch) plans — memory checks,
divisibility, TP-on-NVLink — prices each with the iteration engine, and
prints the leaderboard.  Compare the winner against the paper's expert
choice (Table 1).

    python examples/parallelism_tuner.py [model] [n_gpus] [batch]
"""

import sys

from repro.model import MODEL_CATALOG
from repro.parallel import ParallelPlan, feasible, tune
from repro.hardware import AMPERE


def main() -> None:
    model_name = sys.argv[1] if len(sys.argv) > 1 else "gpt-175b"
    n_gpus = int(sys.argv[2]) if len(sys.argv) > 2 else 256
    batch = int(sys.argv[3]) if len(sys.argv) > 3 else 256
    model = MODEL_CATALOG[model_name]

    print(f"tuning {model_name} on {n_gpus} GPUs at global batch {batch}...\n")
    results = tune(model, n_gpus=n_gpus, global_batch=batch, top_k=8)
    for i, result in enumerate(results, 1):
        print(f"#{i}  {result.describe()}")

    if model_name == "gpt-175b" and n_gpus % 64 == 0:
        paper = ParallelPlan(dp=n_gpus // 64, tp=8, pp=8, vpp=6)
        status = "feasible" if feasible(model, paper, AMPERE, batch) else "INFEASIBLE"
        print(f"\npaper's Table 1 config: {paper.describe()} ({status})")
        print("note: the tuner may beat it — ZeRO-2 with shallow pipelines avoids")
        print("PP communication entirely at this scale, at the cost of per-GPU")
        print("memory headroom the production deployment preferred to keep.")


if __name__ == "__main__":
    main()
